package sim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
)

// quickOpts is a small, fast run shared by the observability tests.
func quickOpts() Options {
	opts := DefaultOptions()
	opts.Cores = 16
	opts.WarmupS = 0.05
	opts.MeasureS = 0.2
	return opts
}

// TestTraceDecimationCount is the regression test for the trace stride:
// when TracePoints does not divide the measurement epoch count, ceiling
// division must keep the recorded trace within the requested point count
// (the old floor stride could overshoot it by almost 2×).
func TestTraceDecimationCount(t *testing.T) {
	cases := []struct {
		measureS float64
		points   int
	}{
		{0.2, 30},  // 200 epochs, 30 points: 200/30 floors to 6 → 34 points
		{0.2, 64},  // 200/64 floors to 3 → 67 points
		{0.1, 100}, // exact divide: stride 1, exactly 100
		{0.1, 7},   // 100/7 floors to 14 → 15 points
		{0.01, 50}, // fewer epochs than points: stride 1, 10 points
	}
	for _, tc := range cases {
		opts := quickOpts()
		opts.MeasureS = tc.measureS
		opts.TracePoints = tc.points
		_, measureEpochs := opts.Epochs()

		c, err := NewController("static", DefaultEnv(opts.Cores))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(opts, c)
		if err != nil {
			t.Fatal(err)
		}
		got := len(res.Trace)
		if got > tc.points {
			t.Errorf("measure=%gs points=%d: recorded %d trace points, exceeds request",
				tc.measureS, tc.points, got)
		}
		want := tc.points
		if measureEpochs < want {
			want = measureEpochs
		}
		// Ceiling division guarantees at least half the request is used
		// whenever enough epochs exist.
		if got < (want+1)/2 {
			t.Errorf("measure=%gs points=%d: recorded only %d trace points, want >= %d",
				tc.measureS, tc.points, got, (want+1)/2)
		}
	}
}

// TestRunObserverTrace runs with a JSONL tracer attached and checks the
// acceptance property: the undecimated per-epoch power integral matches
// the run's measured energy within 1%, and the event stream is
// structurally sound.
func TestRunObserverTrace(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(obs.NewWriterSink(&buf), obs.TracerOptions{Every: 1})

	opts := quickOpts()
	opts.Observer = tracer
	env := EnvFor64(t, opts)
	c, err := NewController("od-rl", env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, measureEpochs := opts.Epochs()
	if want := measureEpochs + 2; len(recs) != want {
		t.Fatalf("got %d records, want %d (start + %d epochs + end)", len(recs), want, measureEpochs)
	}
	start, end := recs[0], recs[len(recs)-1]
	if start.Type != "run_start" || start.Meta.Controller != "od-rl" ||
		start.Meta.Cores != opts.Cores || start.Meta.Seed != opts.Seed {
		t.Errorf("run_start = %+v", start)
	}
	if end.Type != "run_end" || end.Sampled != measureEpochs {
		t.Errorf("run_end = %+v, want sampled=%d", end, measureEpochs)
	}

	var energyJ, islandJ float64
	for _, r := range recs[1 : len(recs)-1] {
		ev := r.Event
		if r.Type != "epoch" {
			t.Fatalf("unexpected record type %q mid-run", r.Type)
		}
		energyJ += ev.PowerW * opts.EpochS
		levels := 0
		for _, n := range ev.LevelHist {
			levels += n
		}
		if levels != opts.Cores {
			t.Errorf("epoch %d: level histogram sums to %d cores, want %d", ev.Epoch, levels, opts.Cores)
		}
		if len(ev.IslandPowerW) != 1 {
			t.Errorf("epoch %d: %d islands for per-core DVFS, want 1", ev.Epoch, len(ev.IslandPowerW))
		}
		for _, p := range ev.IslandPowerW {
			islandJ += p * opts.EpochS
		}
		if ev.OvershootW < 0 || (ev.PowerW > ev.BudgetW && ev.OvershootW == 0) {
			t.Errorf("epoch %d: inconsistent overshoot %g (power %g, budget %g)",
				ev.Epoch, ev.OvershootW, ev.PowerW, ev.BudgetW)
		}
	}
	if rel := math.Abs(energyJ-res.Summary.EnergyJ) / res.Summary.EnergyJ; rel > 0.01 {
		t.Errorf("trace power integral %g J vs measured energy %g J: %.2f%% off, want <1%%",
			energyJ, res.Summary.EnergyJ, 100*rel)
	}
	// Island sums use observed (noisy, core-only) power, so allow a looser
	// envelope against exact chip energy (which includes uncore).
	if islandJ <= 0 || islandJ > energyJ {
		t.Errorf("island power integral %g J outside (0, %g]", islandJ, energyJ)
	}
}

// EnvFor64 wraps EnvFor for tests, failing on error.
func EnvFor64(t *testing.T, opts Options) Env {
	t.Helper()
	env, err := EnvFor(opts)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestRunPhaseSplit checks that the od-rl controller's decision time is
// split into local-learning and global-reallocation phases covering the
// measurement window.
func TestRunPhaseSplit(t *testing.T) {
	opts := quickOpts()
	c, err := NewController("od-rl", EnvFor64(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.CtrlLocalTimeS <= 0 {
		t.Errorf("CtrlLocalTimeS = %g, want > 0", s.CtrlLocalTimeS)
	}
	if s.CtrlGlobalTimeS <= 0 {
		t.Errorf("CtrlGlobalTimeS = %g, want > 0", s.CtrlGlobalTimeS)
	}
	// The phases are sub-spans of the timed Decide calls; allow generous
	// slop for timer granularity but catch gross double counting.
	if sum := s.CtrlLocalTimeS + s.CtrlGlobalTimeS; sum > 2*s.CtrlTimeS+1e-3 {
		t.Errorf("phase sum %g s wildly exceeds CtrlTimeS %g s", sum, s.CtrlTimeS)
	}

	// Baselines without probes report zero phase time.
	c2, err := NewController("static", EnvFor64(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(opts, c2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.CtrlLocalTimeS != 0 || res2.Summary.CtrlGlobalTimeS != 0 {
		t.Errorf("static controller has phase times %g/%g, want 0/0",
			res2.Summary.CtrlLocalTimeS, res2.Summary.CtrlGlobalTimeS)
	}
}

// TestDefaultObserverFallback proves the package-level observer hook sees
// runs whose Options carry no observer.
func TestDefaultObserverFallback(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(obs.NewWriterSink(&buf), obs.TracerOptions{Every: 50})
	DefaultObserver = tracer
	defer func() { DefaultObserver = nil }()

	opts := quickOpts()
	c, err := NewController("greedy", EnvFor64(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(opts, c); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("default observer saw %d records, want at least start+sample+end", len(recs))
	}
	if recs[0].Meta.Controller != "greedy" {
		t.Errorf("controller = %q, want greedy", recs[0].Meta.Controller)
	}
}

// TestIslandEventGrouping checks per-island aggregation when islands are
// configured.
func TestIslandEventGrouping(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(obs.NewWriterSink(&buf), obs.TracerOptions{Every: 100})

	opts := quickOpts()
	opts.Cores = 16 // 4×4 grid
	opts.IslandW, opts.IslandH = 2, 2
	opts.Observer = tracer
	c, err := NewController("static", EnvFor64(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(opts, c); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawEpoch := false
	for _, r := range recs {
		if r.Type != "epoch" {
			continue
		}
		sawEpoch = true
		if len(r.Event.IslandPowerW) != 4 {
			t.Errorf("epoch %d: %d islands, want 4 (4×4 grid of 2×2 islands)",
				r.Event.Epoch, len(r.Event.IslandPowerW))
		}
	}
	if !sawEpoch {
		t.Error("no epoch events recorded")
	}
}
