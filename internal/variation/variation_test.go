package variation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{LeakSigma: -0.1},
		{LeakSigma: 3},
		{DynSigma: -0.1},
		{DynSigma: 3},
		{CorrPasses: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	m, err := Generate(8, 8, Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.W != 8 || m.H != 8 || len(m.LeakMult) != 64 {
		t.Fatalf("map shape wrong: %+v", m)
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(0, 4, Default()); err == nil {
		t.Fatal("expected error for zero width")
	}
	if _, err := Generate(4, 4, Params{LeakSigma: -1}); err == nil {
		t.Fatal("expected error for bad params")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(4, 4, Default())
	b, _ := Generate(4, 4, Default())
	for i := range a.LeakMult {
		if a.LeakMult[i] != b.LeakMult[i] || a.DynMult[i] != b.DynMult[i] {
			t.Fatal("same-seed dies differ")
		}
	}
	p := Default()
	p.Seed = 2
	c, _ := Generate(4, 4, p)
	same := true
	for i := range a.LeakMult {
		if a.LeakMult[i] != c.LeakMult[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical dies")
	}
}

func TestMultiplierStatistics(t *testing.T) {
	p := Default()
	// Average over many dies: mean multiplier ≈ 1, spread ≈ sigma.
	sumLeak, n := 0.0, 0
	var logs []float64
	for seed := uint64(1); seed <= 30; seed++ {
		p.Seed = seed
		m, err := Generate(8, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range m.LeakMult {
			sumLeak += v
			logs = append(logs, math.Log(v))
			n++
		}
	}
	mean := sumLeak / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean leakage multiplier = %v, want ~1", mean)
	}
	// Log-domain standard deviation should be near LeakSigma.
	lm := 0.0
	for _, v := range logs {
		lm += v
	}
	lm /= float64(n)
	ss := 0.0
	for _, v := range logs {
		d := v - lm
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n))
	if math.Abs(sd-p.LeakSigma) > 0.05 {
		t.Fatalf("log-domain spread = %v, want ~%v", sd, p.LeakSigma)
	}
}

// Smoothing must increase nearest-neighbour correlation.
func TestSpatialCorrelation(t *testing.T) {
	corr := func(passes int) float64 {
		p := Default()
		p.CorrPasses = passes
		total := 0.0
		n := 0
		for seed := uint64(1); seed <= 20; seed++ {
			p.Seed = seed
			m, _ := Generate(8, 8, p)
			for i := 0; i < 63; i++ {
				if (i+1)%8 == 0 {
					continue // don't wrap rows
				}
				a := math.Log(m.LeakMult[i]) / p.LeakSigma
				b := math.Log(m.LeakMult[i+1]) / p.LeakSigma
				total += a * b
				n++
			}
		}
		return total / float64(n)
	}
	white := corr(0)
	smooth := corr(3)
	if smooth <= white+0.2 {
		t.Fatalf("smoothing did not raise neighbour correlation: %v -> %v", white, smooth)
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(3, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range m.LeakMult {
		if m.LeakMult[i] != 1 || m.DynMult[i] != 1 {
			t.Fatal("uniform map not identity")
		}
	}
}

func TestSpread(t *testing.T) {
	min, max := Spread([]float64{0.8, 1.3, 1.0})
	if min != 0.8 || max != 1.3 {
		t.Fatalf("Spread = (%v, %v)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty Spread did not panic")
		}
	}()
	Spread(nil)
}

// Property: all multipliers are positive and finite for any seed/sigma.
func TestQuickMultipliersPositive(t *testing.T) {
	f := func(seed uint64, sigRaw uint8) bool {
		p := Params{
			LeakSigma:  float64(sigRaw%20) / 10,
			DynSigma:   float64(sigRaw%10) / 10,
			CorrPasses: int(sigRaw % 4),
			Seed:       seed,
		}
		m, err := Generate(4, 4, p)
		if err != nil {
			return false
		}
		for i := range m.LeakMult {
			if m.LeakMult[i] <= 0 || math.IsInf(m.LeakMult[i], 0) || math.IsNaN(m.LeakMult[i]) {
				return false
			}
			if m.DynMult[i] <= 0 || math.IsInf(m.DynMult[i], 0) || math.IsNaN(m.DynMult[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
