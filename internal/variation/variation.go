// Package variation models manufacturing process variation: per-core
// multipliers on leakage and dynamic power, drawn from a spatially
// correlated lognormal field.
//
// Process variation is the natural stress test for the two controller
// families this repository compares. A model-based power manager carries
// nominal technology constants, so on a leaky die its per-core power
// predictions are systematically wrong; a model-free learner never had a
// model to invalidate — each core's agent simply learns its own silicon.
// Experiment F11 quantifies exactly this gap.
package variation

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Params describe the variation magnitude and spatial structure.
type Params struct {
	// LeakSigma is the log-domain standard deviation of the leakage
	// multiplier. 0.3 gives roughly ±30% core-to-core leakage spread,
	// typical of scaled planar technologies.
	LeakSigma float64
	// DynSigma is the log-domain standard deviation of the dynamic-power
	// multiplier (effective capacitance spread); much smaller than leakage
	// in practice.
	DynSigma float64
	// FreqSigma is the log-domain standard deviation of the per-core
	// achievable-frequency multiplier (critical-path spread): a core with
	// multiplier 0.95 runs 5% slower than nominal at every VF level.
	FreqSigma float64
	// CorrPasses is the number of nearest-neighbour smoothing passes
	// applied to the random field; more passes mean longer spatial
	// correlation distance. Zero means white (uncorrelated) variation.
	CorrPasses int
	// Seed drives the field realisation: one seed is one die.
	Seed uint64
}

// Default returns a moderate 22 nm-class variation profile: 30% leakage
// spread, 8% dynamic spread, correlation over a few cores.
func Default() Params {
	return Params{LeakSigma: 0.30, DynSigma: 0.08, FreqSigma: 0.05, CorrPasses: 2, Seed: 1}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.LeakSigma < 0 || p.LeakSigma > 2:
		return fmt.Errorf("variation: LeakSigma %g out of [0,2]", p.LeakSigma)
	case p.DynSigma < 0 || p.DynSigma > 2:
		return fmt.Errorf("variation: DynSigma %g out of [0,2]", p.DynSigma)
	case p.FreqSigma < 0 || p.FreqSigma > 1:
		return fmt.Errorf("variation: FreqSigma %g out of [0,1]", p.FreqSigma)
	case p.CorrPasses < 0:
		return fmt.Errorf("variation: negative CorrPasses %d", p.CorrPasses)
	}
	return nil
}

// Map is one die's realised variation: per-core multipliers, mean ≈ 1.
type Map struct {
	W, H     int
	LeakMult []float64
	DynMult  []float64
	FreqMult []float64
}

// Validate reports structural problems.
func (m *Map) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("variation: invalid grid %dx%d", m.W, m.H)
	}
	n := m.W * m.H
	if len(m.LeakMult) != n || len(m.DynMult) != n || len(m.FreqMult) != n {
		return fmt.Errorf("variation: multiplier vectors sized %d/%d/%d for %d cores",
			len(m.LeakMult), len(m.DynMult), len(m.FreqMult), n)
	}
	for i := 0; i < n; i++ {
		if m.LeakMult[i] <= 0 || m.DynMult[i] <= 0 || m.FreqMult[i] <= 0 {
			return fmt.Errorf("variation: non-positive multiplier at core %d", i)
		}
	}
	return nil
}

// correlatedField samples a unit-variance Gaussian field on a w×h grid and
// smooths it with nearest-neighbour averaging passes, re-normalising the
// sample variance after smoothing so sigma stays meaningful.
func correlatedField(w, h int, passes int, r *rng.RNG) []float64 {
	n := w * h
	f := make([]float64, n)
	for i := range f {
		f[i] = r.NormFloat64()
	}
	tmp := make([]float64, n)
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			sum := f[i]
			cnt := 1.0
			if x > 0 {
				sum += f[i-1]
				cnt++
			}
			if x < w-1 {
				sum += f[i+1]
				cnt++
			}
			if y > 0 {
				sum += f[i-w]
				cnt++
			}
			if y < h-1 {
				sum += f[i+w]
				cnt++
			}
			tmp[i] = sum / cnt
		}
		f, tmp = tmp, f
	}
	// Re-normalise to unit sample variance (smoothing shrinks it). A
	// single-node grid or an all-equal field keeps its values as-is.
	mean := 0.0
	for _, v := range f {
		mean += v
	}
	mean /= float64(n)
	variance := 0.0
	for _, v := range f {
		d := v - mean
		variance += d * d
	}
	variance /= float64(n)
	if variance > 1e-12 {
		inv := 1 / math.Sqrt(variance)
		for i := range f {
			f[i] = (f[i] - mean) * inv
		}
	}
	return f
}

// Generate realises one die.
func Generate(w, h int, p Params) (*Map, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("variation: invalid grid %dx%d", w, h)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	leakField := correlatedField(w, h, p.CorrPasses, r.Split())
	dynField := correlatedField(w, h, p.CorrPasses, r.Split())
	freqField := correlatedField(w, h, p.CorrPasses, r.Split())
	n := w * h
	m := &Map{
		W: w, H: h,
		LeakMult: make([]float64, n),
		DynMult:  make([]float64, n),
		FreqMult: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// exp(σg − σ²/2) has mean 1 for standard normal g. Frequency and
		// leakage are anti-correlated in silicon (fast transistors leak),
		// so the frequency multiplier reuses the leakage field's sign.
		m.LeakMult[i] = math.Exp(p.LeakSigma*leakField[i] - p.LeakSigma*p.LeakSigma/2)
		m.DynMult[i] = math.Exp(p.DynSigma*dynField[i] - p.DynSigma*p.DynSigma/2)
		g := 0.5*leakField[i] + 0.5*freqField[i]
		m.FreqMult[i] = math.Exp(p.FreqSigma*g - p.FreqSigma*p.FreqSigma/2)
	}
	return m, nil
}

// Uniform returns the no-variation identity map, useful as a control.
func Uniform(w, h int) *Map {
	n := w * h
	m := &Map{
		W: w, H: h,
		LeakMult: make([]float64, n),
		DynMult:  make([]float64, n),
		FreqMult: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.LeakMult[i] = 1
		m.DynMult[i] = 1
		m.FreqMult[i] = 1
	}
	return m
}

// Spread returns the min and max of a multiplier vector, for reporting.
func Spread(mult []float64) (min, max float64) {
	if len(mult) == 0 {
		panic("variation: Spread of empty vector")
	}
	min, max = mult[0], mult[0]
	for _, v := range mult[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
