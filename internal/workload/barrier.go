package workload

import (
	"fmt"

	"repro/internal/rng"
)

// WorkSource is a Source whose progress depends on retired instructions,
// not just wall time. The simulator feeds each epoch's actual instruction
// count back, closing the loop between DVFS decisions and program
// progress — a slow core takes longer to reach its barrier.
//
// WorkSource also marks shared application state: manycore treats any
// source implementing it as coupled to its siblings and disables parallel
// chip stepping. Wrappers around a WorkSource must implement WorkSource
// themselves (forwarding AdvanceWork) so this detection still fires; see
// the invariant note on Source.
type WorkSource interface {
	Source
	// AdvanceWork moves time forward dt seconds during which the core
	// retired the given instructions; it returns the number of phase
	// boundaries crossed (work→wait or wait→work).
	AdvanceWork(dt, instructions float64) int
}

// BarrierApp models a bulk-synchronous multithreaded application: n lanes
// (one per core) each execute a per-superstep instruction quota of the
// work phase, then block at a barrier until every lane has finished.
// Per-lane quota scaling models workload imbalance — the slow lanes gate
// the barrier, so budget given to them is worth more than budget given to
// lanes that will only wait. This is exactly the structure the OD-RL
// global reallocation layer is designed to exploit.
type BarrierApp struct {
	lanes      []*barrierLane
	work       Phase
	wait       Phase
	supersteps int
}

// barrierLane is one thread of the app.
type barrierLane struct {
	app       *BarrierApp
	quota     float64 // instructions per superstep for this lane
	remaining float64
	waiting   bool
}

// NewBarrierApp creates an n-lane app. quotaInstr is the nominal
// per-superstep instruction count; imbalance in [0,1) spreads per-lane
// quotas uniformly over [quota·(1−imb), quota·(1+imb)].
func NewBarrierApp(n int, work Phase, quotaInstr, imbalance float64, r *rng.RNG) (*BarrierApp, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: barrier app needs lanes, got %d", n)
	}
	if err := work.Validate(); err != nil {
		return nil, err
	}
	if quotaInstr <= 0 {
		return nil, fmt.Errorf("workload: non-positive quota %g", quotaInstr)
	}
	if imbalance < 0 || imbalance >= 1 {
		return nil, fmt.Errorf("workload: imbalance %g out of [0,1)", imbalance)
	}
	if r == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	app := &BarrierApp{
		work: work,
		// A waiting lane spins on a synchronisation variable: negligible
		// useful activity and no frequency sensitivity.
		wait: idlePhase(),
	}
	for i := 0; i < n; i++ {
		q := quotaInstr
		if imbalance > 0 {
			q *= 1 + imbalance*(2*r.Float64()-1)
		}
		app.lanes = append(app.lanes, &barrierLane{app: app, quota: q, remaining: q})
	}
	return app, nil
}

// Lanes returns the lane count.
func (a *BarrierApp) Lanes() int { return len(a.lanes) }

// Lane returns lane i's Source (a WorkSource).
func (a *BarrierApp) Lane(i int) WorkSource { return a.lanes[i] }

// Supersteps returns how many barrier releases have happened.
func (a *BarrierApp) Supersteps() int { return a.supersteps }

// maybeRelease opens the barrier when every lane has arrived.
func (a *BarrierApp) maybeRelease() bool {
	for _, l := range a.lanes {
		if !l.waiting {
			return false
		}
	}
	for _, l := range a.lanes {
		l.waiting = false
		l.remaining = l.quota
	}
	a.supersteps++
	return true
}

// Phase implements Source.
func (l *barrierLane) Phase() Phase {
	if l.waiting {
		return l.app.wait
	}
	return l.app.work
}

// PhaseIndex implements Source: 0 = working, 1 = waiting.
func (l *barrierLane) PhaseIndex() int {
	if l.waiting {
		return 1
	}
	return 0
}

// AdvanceWork implements WorkSource.
func (l *barrierLane) AdvanceWork(dt, instructions float64) int {
	if dt < 0 || instructions < 0 {
		panic(fmt.Sprintf("workload: negative advance (dt=%g, instr=%g)", dt, instructions))
	}
	changes := 0
	if !l.waiting {
		l.remaining -= instructions
		if l.remaining <= 0 {
			l.waiting = true
			changes++
		}
	}
	// The last arriving lane releases everyone, including itself.
	if l.waiting && l.app.maybeRelease() {
		changes++
	}
	return changes
}

// Advance implements Source for harnesses that do not feed instruction
// counts back; progress is approximated at the work phase's throughput at
// a nominal 2.5 GHz clock.
func (l *barrierLane) Advance(dt float64) int {
	const nominalHz = 2.5e9
	return l.AdvanceWork(dt, l.app.work.IPSAt(nominalHz)*dt)
}
