// Package workload generates the phased, Markov-modulated synthetic
// workloads that stand in for the paper's PARSEC/SPLASH-2 benchmarks.
//
// A DVFS controller never sees source code — it sees per-epoch telemetry
// shaped by the *phase structure* of the program: how compute-bound or
// memory-bound execution currently is, and how abruptly that changes.
// Each workload is a continuous-time Markov chain over a small set of
// phases; each phase fixes a CPI stack:
//
//	CPI(f) = BaseCPI + MPKI/1000 · MemLatency · f
//
// BaseCPI is the frequency-independent pipeline component (cycles), while
// memory stalls are constant in *time*, so their cycle cost grows linearly
// with frequency. This yields the sub-linear frequency scaling of
// memory-bound code that makes DVFS profitable, and abrupt phase changes
// are precisely what make prediction-based power managers overshoot.
package workload

import (
	"fmt"
	"math"
)

// Class is a coarse label for a phase, used for reporting and state
// discretisation sanity checks.
type Class int

// Phase classes, from fully core-bound to fully stalled.
const (
	Compute Class = iota
	Mixed
	Memory
	Bursty
	Idle
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Compute:
		return "compute"
	case Mixed:
		return "mixed"
	case Memory:
		return "memory"
	case Bursty:
		return "bursty"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Phase is one steady region of execution with a fixed CPI stack.
type Phase struct {
	Class        Class
	BaseCPI      float64 // pipeline cycles per instruction, frequency-independent
	MPKI         float64 // long-latency memory accesses per kilo-instruction
	MemLatencyNs float64 // average latency of one such access, in wall-clock ns
	Activity     float64 // switching-activity factor in [0,1] for dynamic power
}

// Validate reports the first physically meaningless field.
func (ph Phase) Validate() error {
	switch {
	case ph.BaseCPI <= 0:
		return fmt.Errorf("workload: BaseCPI must be positive, got %g", ph.BaseCPI)
	case ph.MPKI < 0:
		return fmt.Errorf("workload: MPKI must be non-negative, got %g", ph.MPKI)
	case ph.MemLatencyNs < 0:
		return fmt.Errorf("workload: MemLatencyNs must be non-negative, got %g", ph.MemLatencyNs)
	case ph.Activity < 0 || ph.Activity > 1:
		return fmt.Errorf("workload: Activity must be in [0,1], got %g", ph.Activity)
	case math.IsNaN(ph.BaseCPI + ph.MPKI + ph.MemLatencyNs + ph.Activity):
		return fmt.Errorf("workload: NaN field in phase %+v", ph)
	}
	return nil
}

// CPIAt returns cycles per instruction at clock frequency fHz.
func (ph Phase) CPIAt(fHz float64) float64 {
	return ph.BaseCPI + ph.MPKI/1000*ph.MemLatencyNs*1e-9*fHz
}

// IPSAt returns instructions per second at clock frequency fHz.
func (ph Phase) IPSAt(fHz float64) float64 {
	if fHz <= 0 {
		return 0
	}
	return fHz / ph.CPIAt(fHz)
}

// MemBoundednessAt returns the fraction of cycles spent in memory stalls at
// frequency fHz, in [0,1). Controllers use this (or its telemetry proxy) to
// judge how much performance a frequency increase would actually buy.
func (ph Phase) MemBoundednessAt(fHz float64) float64 {
	cpi := ph.CPIAt(fHz)
	if cpi <= 0 {
		return 0
	}
	return (cpi - ph.BaseCPI) / cpi
}

// Scale returns a copy of the phase with BaseCPI and MPKI scaled by factor,
// used to model per-core input variation within a multithreaded run.
// The factor must be positive.
func (ph Phase) Scale(factor float64) Phase {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: non-positive scale factor %g", factor))
	}
	out := ph
	out.BaseCPI *= factor
	out.MPKI *= factor
	return out
}
