package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func jobWork() Phase {
	return Phase{Class: Compute, BaseCPI: 1.0, MPKI: 1, MemLatencyNs: 80, Activity: 0.9}
}

func TestNewJobSystemValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewJobSystem(0, jobWork(), 100, 1e6, r); err == nil {
		t.Fatal("expected error for zero cores")
	}
	if _, err := NewJobSystem(4, Phase{}, 100, 1e6, r); err == nil {
		t.Fatal("expected error for invalid phase")
	}
	if _, err := NewJobSystem(4, jobWork(), 0, 1e6, r); err == nil {
		t.Fatal("expected error for zero rate")
	}
	if _, err := NewJobSystem(4, jobWork(), 100, 0, r); err == nil {
		t.Fatal("expected error for zero job size")
	}
	if _, err := NewJobSystem(4, jobWork(), 100, 1e6, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestJobLaneIdleUntilArrival(t *testing.T) {
	// Very low arrival rate: the lane starts idle.
	s, err := NewJobSystem(1, jobWork(), 0.001, 1e6, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	l := s.Lane(0)
	if l.PhaseIndex() != 1 || l.Phase().Class != Idle {
		t.Fatal("lane should start idle")
	}
	l.AdvanceWork(1e-3, 0)
	if s.Completed() != 0 {
		t.Fatal("phantom completion")
	}
}

func TestJobCompletionAndLatency(t *testing.T) {
	// High rate so a job arrives almost immediately.
	s, err := NewJobSystem(1, jobWork(), 1000, 1e6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	l := s.Lane(0)
	// Run epochs retiring 1e6 instructions each; jobs are ~exp(1e6) long,
	// so completions accumulate quickly.
	for e := 0; e < 200; e++ {
		l.AdvanceWork(1e-3, 1e6)
	}
	if s.Completed() < 50 {
		t.Fatalf("only %d completions in 200 busy epochs", s.Completed())
	}
	if s.MeanLatencyS() <= 0 {
		t.Fatal("latency not tracked")
	}
}

func TestJobThroughputMatchesArrivalRateWhenUnderloaded(t *testing.T) {
	// 4 cores, plenty of capacity: long-run completions/s ≈ arrival rate.
	const rate = 200.0
	s, err := NewJobSystem(4, jobWork(), rate, 1e6, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-3
	const totalS = 20.0
	for e := 0; e < int(totalS/dt); e++ {
		for i := 0; i < 4; i++ {
			s.Lane(i).AdvanceWork(dt, 2.5e6) // fast cores
		}
	}
	got := float64(s.Completed()) / totalS
	if math.Abs(got-rate)/rate > 0.1 {
		t.Fatalf("completion rate %v, want ~%v", got, rate)
	}
	if s.Queued() > 20 {
		t.Fatalf("backlog %d in an underloaded system", s.Queued())
	}
}

func TestJobSlowServiceRaisesLatencyAndBacklog(t *testing.T) {
	run := func(instrPerEpoch float64) (float64, int) {
		s, err := NewJobSystem(2, jobWork(), 150, 1e6, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 10000; e++ {
			for i := 0; i < 2; i++ {
				s.Lane(i).AdvanceWork(1e-3, instrPerEpoch)
			}
		}
		return s.MeanLatencyS(), s.MaxQueued()
	}
	fastLat, fastQ := run(2.5e6)
	slowLat, slowQ := run(0.12e6) // throttled below the offered load
	if slowLat <= fastLat*2 {
		t.Fatalf("throttling barely moved latency: %v vs %v", slowLat, fastLat)
	}
	if slowQ <= fastQ {
		t.Fatalf("throttling did not grow the backlog: %d vs %d", slowQ, fastQ)
	}
}

func TestJobResetStats(t *testing.T) {
	s, _ := NewJobSystem(1, jobWork(), 1000, 1e5, rng.New(1))
	l := s.Lane(0)
	for e := 0; e < 100; e++ {
		l.AdvanceWork(1e-3, 1e6)
	}
	if s.Completed() == 0 {
		t.Fatal("no completions before reset")
	}
	s.ResetStats()
	if s.Completed() != 0 || s.MeanLatencyS() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestJobAdvanceFallback(t *testing.T) {
	s, _ := NewJobSystem(1, jobWork(), 1000, 1e5, rng.New(5))
	l := s.Lane(0)
	for e := 0; e < 500; e++ {
		l.Advance(1e-3)
	}
	if s.Completed() == 0 {
		t.Fatal("fallback Advance made no progress")
	}
}

func TestJobAdvancePanicsOnNegative(t *testing.T) {
	s, _ := NewJobSystem(1, jobWork(), 100, 1e6, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Lane(0).AdvanceWork(0, -1)
}

func TestJobDeterminism(t *testing.T) {
	run := func() (int, float64) {
		s, _ := NewJobSystem(3, jobWork(), 500, 1e6, rng.New(21))
		for e := 0; e < 2000; e++ {
			for i := 0; i < 3; i++ {
				s.Lane(i).AdvanceWork(1e-3, 1.5e6)
			}
		}
		return s.Completed(), s.MeanLatencyS()
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Fatal("same-seed job systems diverged")
	}
}
