package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// PhaseSpec is a phase plus its duration statistics inside a Spec.
type PhaseSpec struct {
	Phase
	// MeanDurS is the mean phase duration in seconds.
	MeanDurS float64
	// DurJitter in [0,1) spreads durations uniformly over
	// [Mean·(1−J), Mean·(1+J)].
	DurJitter float64
}

// Spec is a complete workload description: a Markov chain over phases.
type Spec struct {
	Name string
	// Phases are the chain's states.
	Phases []PhaseSpec
	// Transitions[i][j] is the (unnormalised) probability of moving from
	// phase i to phase j when phase i ends. Self-transitions are allowed
	// and simply extend the phase with a fresh duration draw.
	Transitions [][]float64
	// Start is the index of the initial phase.
	Start int
}

// Validate reports the first structural problem in the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has empty name")
	}
	n := len(s.Phases)
	if n == 0 {
		return fmt.Errorf("workload %q: no phases", s.Name)
	}
	for i, ps := range s.Phases {
		if err := ps.Phase.Validate(); err != nil {
			return fmt.Errorf("workload %q phase %d: %w", s.Name, i, err)
		}
		if ps.MeanDurS <= 0 {
			return fmt.Errorf("workload %q phase %d: MeanDurS must be positive, got %g", s.Name, i, ps.MeanDurS)
		}
		if ps.DurJitter < 0 || ps.DurJitter >= 1 {
			return fmt.Errorf("workload %q phase %d: DurJitter must be in [0,1), got %g", s.Name, i, ps.DurJitter)
		}
	}
	if len(s.Transitions) != n {
		return fmt.Errorf("workload %q: transition matrix has %d rows, want %d", s.Name, len(s.Transitions), n)
	}
	for i, row := range s.Transitions {
		if len(row) != n {
			return fmt.Errorf("workload %q: transition row %d has %d entries, want %d", s.Name, i, len(row), n)
		}
		sum := 0.0
		for j, w := range row {
			if w < 0 || math.IsNaN(w) {
				return fmt.Errorf("workload %q: transition [%d][%d] = %g invalid", s.Name, i, j, w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload %q: transition row %d sums to zero", s.Name, i)
		}
	}
	if s.Start < 0 || s.Start >= n {
		return fmt.Errorf("workload %q: start phase %d out of range", s.Name, s.Start)
	}
	return nil
}

// Source is anything that produces a phase stream for one core: a live
// Markov process or a recorded-trace replayer.
//
// Invariant for independent sources: between two Advance calls whose
// return reports a phase change (> 0), Phase must return the identical
// value on every call — it is a pure function of the source's discrete
// phase state. The epoch kernel memoises per-phase derived quantities
// (IPS, dynamic power, memory-boundedness per VF level) and invalidates
// only when Advance reports a change, so a source whose Phase drifted
// silently would feed stale physics to the simulator. WorkSource lanes
// are exempt: their phase may flip when *another* lane's AdvanceWork
// releases a barrier or dispatches a job, so the kernel never memoises
// them (they also force sequential stepping, see below).
//
// Invariant for wrappers: manycore detects whether a chip's sources share
// application state (and so must step sequentially) by asserting each
// Source to WorkSource at construction time. A wrapper that delegates to
// a WorkSource (a scaler, jitterer, tracer, ...) MUST itself implement
// WorkSource and forward AdvanceWork; otherwise the shared state it hides
// would pass the independence check and race under parallel stepping.
type Source interface {
	// Phase returns the currently active phase.
	Phase() Phase
	// Advance moves time forward by dt seconds and returns how many phase
	// boundaries were crossed.
	Advance(dt float64) int
	// PhaseIndex returns the index of the active phase in the spec, or -1
	// if the source is not spec-backed.
	PhaseIndex() int
}

// Process is a live Markov-chain workload source.
type Process struct {
	spec       Spec
	r          *rng.RNG
	current    int
	remainingS float64
	scale      float64
	// scaled[i] is spec.Phases[i].Phase.Scale(scale), precomputed once at
	// construction: the spec and scale are immutable for the process's
	// lifetime, so Phase() can return the table entry — the identical
	// bits the per-call Scale produced, minus the per-call multiplies.
	scaled []Phase
}

// NewProcess creates a process over spec using random stream r.
func NewProcess(spec Spec, r *rng.RNG) (*Process, error) {
	return NewScaledProcess(spec, r, 1.0)
}

// NewScaledProcess is NewProcess with a per-core scale factor applied to
// every phase (see Phase.Scale); it models workload imbalance across cores.
func NewScaledProcess(spec Spec, r *rng.RNG, scale float64) (*Process, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: non-positive scale %g", scale)
	}
	p := &Process{spec: spec, r: r, current: spec.Start, scale: scale}
	p.scaled = make([]Phase, len(spec.Phases))
	for i := range spec.Phases {
		p.scaled[i] = spec.Phases[i].Phase.Scale(scale)
	}
	p.remainingS = p.drawDuration(p.current)
	return p, nil
}

func (p *Process) drawDuration(idx int) float64 {
	ps := p.spec.Phases[idx]
	if ps.DurJitter == 0 {
		return ps.MeanDurS
	}
	u := 2*p.r.Float64() - 1 // uniform in [-1, 1)
	return ps.MeanDurS * (1 + ps.DurJitter*u)
}

// Phase returns the active phase with the process's scale applied.
func (p *Process) Phase() Phase {
	return p.spec.Phases[p.current].Phase.Scale(p.scale)
}

// ScaledPhase is Phase through the precomputed table: identical bits
// (the table entries are the same Scale(scale) results, computed once at
// construction) without the per-call multiplies. Hot callers that have
// already type-asserted to *Process use this; Phase stays the plain
// recompute so the retained reference kernel keeps its pre-optimization
// cost profile.
func (p *Process) ScaledPhase() Phase {
	return p.scaled[p.current]
}

// PhaseIndex returns the active phase's index in the spec.
func (p *Process) PhaseIndex() int { return p.current }

// Advance moves the process forward dt seconds, sampling phase transitions
// as phase budgets expire. It returns the number of transitions taken.
func (p *Process) Advance(dt float64) int {
	if dt < 0 {
		panic(fmt.Sprintf("workload: negative dt %g", dt))
	}
	changes := 0
	for dt >= p.remainingS {
		dt -= p.remainingS
		p.current = p.r.Choice(p.spec.Transitions[p.current])
		p.remainingS = p.drawDuration(p.current)
		changes++
	}
	p.remainingS -= dt
	return changes
}

// Characterization is the time-averaged behaviour of a spec at a reference
// frequency, used for the T2 workload table.
type Characterization struct {
	Name           string
	MeanCPI        float64
	MeanMPKI       float64
	MemBoundedness float64
	MeanActivity   float64
	PhaseRatePerS  float64 // phase changes per second
}

// Characterize runs a process for durS seconds of simulated time at fHz and
// reports its averages, weighting by time.
func Characterize(spec Spec, seed uint64, durS, fHz float64) (Characterization, error) {
	p, err := NewProcess(spec, rng.New(seed))
	if err != nil {
		return Characterization{}, err
	}
	const step = 1e-3
	var c Characterization
	c.Name = spec.Name
	steps := int(durS / step)
	changes := 0
	for i := 0; i < steps; i++ {
		ph := p.Phase()
		c.MeanCPI += ph.CPIAt(fHz)
		c.MeanMPKI += ph.MPKI
		c.MemBoundedness += ph.MemBoundednessAt(fHz)
		c.MeanActivity += ph.Activity
		changes += p.Advance(step)
	}
	n := float64(steps)
	c.MeanCPI /= n
	c.MeanMPKI /= n
	c.MemBoundedness /= n
	c.MeanActivity /= n
	c.PhaseRatePerS = float64(changes) / durS
	return c, nil
}
