package workload

import (
	"testing"
)

func TestAllPresetsValid(t *testing.T) {
	names := PresetNames()
	if len(names) != 10 {
		t.Fatalf("have %d presets, want 10", len(names))
	}
	for _, name := range names {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("preset %q has Name %q", name, s.Name)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestMustPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPreset(unknown) did not panic")
		}
	}()
	MustPreset("nope")
}

func TestPresetNamesSorted(t *testing.T) {
	names := PresetNames()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// The presets must span a spectrum of memory-boundedness so the evaluation
// exercises both DVFS-friendly and DVFS-hostile regimes.
func TestPresetSpectrum(t *testing.T) {
	char := func(name string) Characterization {
		c, err := Characterize(MustPreset(name), 11, 1.0, 2.5e9)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	compute := char("swaptions")
	memory := char("streamcluster")
	if compute.MemBoundedness > 0.3 {
		t.Fatalf("swaptions mem-boundedness = %v, want < 0.3", compute.MemBoundedness)
	}
	if memory.MemBoundedness < 0.5 {
		t.Fatalf("streamcluster mem-boundedness = %v, want > 0.5", memory.MemBoundedness)
	}
}

// Bursty presets must actually change phases faster than steady ones.
func TestPresetPhaseRates(t *testing.T) {
	cDedup, err := Characterize(MustPreset("dedup"), 13, 2.0, 2.5e9)
	if err != nil {
		t.Fatal(err)
	}
	cSwap, err := Characterize(MustPreset("swaptions"), 13, 2.0, 2.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if cDedup.PhaseRatePerS < 3*cSwap.PhaseRatePerS {
		t.Fatalf("dedup phase rate %v should be much higher than swaptions %v",
			cDedup.PhaseRatePerS, cSwap.PhaseRatePerS)
	}
}
