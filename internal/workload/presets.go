package workload

import (
	"fmt"
	"sort"
)

// Preset phase building blocks. Memory latency is wall-clock DRAM latency;
// it varies mildly across benchmarks to reflect locality differences.
func computePhase(cpi, mpki, act float64) Phase {
	return Phase{Class: Compute, BaseCPI: cpi, MPKI: mpki, MemLatencyNs: 75, Activity: act}
}

func mixedPhase(cpi, mpki, act float64) Phase {
	return Phase{Class: Mixed, BaseCPI: cpi, MPKI: mpki, MemLatencyNs: 80, Activity: act}
}

func memoryPhase(cpi, mpki, act float64) Phase {
	return Phase{Class: Memory, BaseCPI: cpi, MPKI: mpki, MemLatencyNs: 90, Activity: act}
}

// idlePhase models a thread blocked on synchronisation or I/O: effectively
// infinite memory-boundedness (frequency buys nothing) at low activity.
func idlePhase() Phase {
	return Phase{Class: Idle, BaseCPI: 1.0, MPKI: 30, MemLatencyNs: 100, Activity: 0.08}
}

func burstyPhase(cpi, mpki, act float64) Phase {
	return Phase{Class: Bursty, BaseCPI: cpi, MPKI: mpki, MemLatencyNs: 80, Activity: act}
}

// presets is the registry of PARSEC-like workload models. Phase CPI stacks
// follow published characterisations of the corresponding benchmark classes:
// option pricing is compute-bound, simulated annealing and streaming
// clustering are memory-bound, media pipelines are bursty, and so on.
var presets = map[string]Spec{
	"blackscholes": {
		Name: "blackscholes",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.80, 1.0, 0.95), MeanDurS: 0.150, DurJitter: 0.3},
			{Phase: mixedPhase(1.05, 5.0, 0.65), MeanDurS: 0.025, DurJitter: 0.4},
		},
		Transitions: [][]float64{
			{0.85, 0.15},
			{0.70, 0.30},
		},
	},
	"swaptions": {
		Name: "swaptions",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.75, 0.5, 1.0), MeanDurS: 0.200, DurJitter: 0.2},
			{Phase: computePhase(0.90, 2.0, 0.85), MeanDurS: 0.060, DurJitter: 0.3},
		},
		Transitions: [][]float64{
			{0.90, 0.10},
			{0.60, 0.40},
		},
	},
	"canneal": {
		Name: "canneal",
		Phases: []PhaseSpec{
			{Phase: memoryPhase(1.20, 18.0, 0.35), MeanDurS: 0.120, DurJitter: 0.4},
			{Phase: mixedPhase(1.10, 7.0, 0.55), MeanDurS: 0.040, DurJitter: 0.4},
		},
		Transitions: [][]float64{
			{0.80, 0.20},
			{0.55, 0.45},
		},
	},
	"streamcluster": {
		Name: "streamcluster",
		Phases: []PhaseSpec{
			{Phase: memoryPhase(1.05, 22.0, 0.40), MeanDurS: 0.100, DurJitter: 0.3},
			{Phase: computePhase(0.85, 2.5, 0.90), MeanDurS: 0.030, DurJitter: 0.5},
		},
		Transitions: [][]float64{
			{0.75, 0.25},
			{0.50, 0.50},
		},
	},
	"bodytrack": {
		Name: "bodytrack",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.90, 2.0, 0.85), MeanDurS: 0.060, DurJitter: 0.4},
			{Phase: mixedPhase(1.15, 6.5, 0.60), MeanDurS: 0.060, DurJitter: 0.4},
			{Phase: memoryPhase(1.25, 14.0, 0.40), MeanDurS: 0.030, DurJitter: 0.5},
		},
		Transitions: [][]float64{
			{0.40, 0.45, 0.15},
			{0.40, 0.40, 0.20},
			{0.45, 0.40, 0.15},
		},
	},
	"fluidanimate": {
		Name: "fluidanimate",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.85, 1.5, 0.90), MeanDurS: 0.080, DurJitter: 0.3},
			{Phase: idlePhase(), MeanDurS: 0.020, DurJitter: 0.6},
			{Phase: mixedPhase(1.10, 6.0, 0.60), MeanDurS: 0.040, DurJitter: 0.4},
		},
		Transitions: [][]float64{
			{0.55, 0.30, 0.15},
			{0.70, 0.10, 0.20},
			{0.50, 0.30, 0.20},
		},
	},
	"dedup": {
		Name: "dedup",
		Phases: []PhaseSpec{
			{Phase: burstyPhase(0.85, 3.0, 0.85), MeanDurS: 0.012, DurJitter: 0.5},
			{Phase: memoryPhase(1.15, 16.0, 0.45), MeanDurS: 0.012, DurJitter: 0.5},
			{Phase: mixedPhase(1.05, 7.0, 0.60), MeanDurS: 0.015, DurJitter: 0.5},
		},
		Transitions: [][]float64{
			{0.20, 0.45, 0.35},
			{0.45, 0.20, 0.35},
			{0.40, 0.40, 0.20},
		},
	},
	"ferret": {
		Name: "ferret",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.90, 2.0, 0.85), MeanDurS: 0.050, DurJitter: 0.3},
			{Phase: mixedPhase(1.10, 6.0, 0.60), MeanDurS: 0.050, DurJitter: 0.3},
			{Phase: memoryPhase(1.20, 15.0, 0.40), MeanDurS: 0.040, DurJitter: 0.3},
			{Phase: mixedPhase(1.00, 5.0, 0.65), MeanDurS: 0.030, DurJitter: 0.3},
		},
		Transitions: [][]float64{
			{0.10, 0.60, 0.20, 0.10},
			{0.15, 0.15, 0.55, 0.15},
			{0.15, 0.15, 0.15, 0.55},
			{0.55, 0.20, 0.15, 0.10},
		},
	},
	"vips": {
		Name: "vips",
		Phases: []PhaseSpec{
			{Phase: mixedPhase(1.00, 5.5, 0.65), MeanDurS: 0.090, DurJitter: 0.3},
			{Phase: computePhase(0.85, 1.8, 0.90), MeanDurS: 0.040, DurJitter: 0.4},
			{Phase: memoryPhase(1.15, 12.0, 0.45), MeanDurS: 0.030, DurJitter: 0.4},
		},
		Transitions: [][]float64{
			{0.60, 0.25, 0.15},
			{0.55, 0.30, 0.15},
			{0.60, 0.25, 0.15},
		},
	},
	"x264": {
		Name: "x264",
		Phases: []PhaseSpec{
			{Phase: burstyPhase(0.80, 1.2, 0.95), MeanDurS: 0.025, DurJitter: 0.6},
			{Phase: idlePhase(), MeanDurS: 0.015, DurJitter: 0.6},
			{Phase: memoryPhase(1.10, 13.0, 0.45), MeanDurS: 0.020, DurJitter: 0.5},
			{Phase: mixedPhase(1.00, 6.0, 0.65), MeanDurS: 0.030, DurJitter: 0.5},
		},
		Transitions: [][]float64{
			{0.25, 0.25, 0.25, 0.25},
			{0.45, 0.10, 0.20, 0.25},
			{0.30, 0.20, 0.20, 0.30},
			{0.35, 0.20, 0.25, 0.20},
		},
	},
}

// Preset returns the named benchmark spec.
func Preset(name string) (Spec, error) {
	s, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown preset %q (have %v)", name, PresetNames())
	}
	return s, nil
}

// PresetNames returns all preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MustPreset is Preset for static names; it panics on unknown names.
func MustPreset(name string) Spec {
	s, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return s
}
