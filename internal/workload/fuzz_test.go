package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadJSON: the trace decoder must never panic and must never accept a
// structurally invalid trace, whatever bytes arrive.
func FuzzReadJSON(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, junk.
	var valid bytes.Buffer
	tr, err := Record(MustPreset("vips"), 1, 0.1)
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"name":"x","phases":[],"entries":[]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validator's own contract.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", verr)
		}
	})
}

// FuzzTraceRoundTrip: any trace the decoder accepts must survive an
// encode/decode round trip byte-equivalently — WriteJSON and ReadJSON are
// inverses on the accepted domain.
func FuzzTraceRoundTrip(f *testing.F) {
	var valid bytes.Buffer
	tr, err := Record(MustPreset("x264"), 2, 0.05)
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"name":"x","phases":[{"class":0,"base_cpi":1,"mpki":0,"mem_latency_ns":1,"activity":0.5}],"entries":[{"phase":0,"dur_s":0.1}]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := got.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on accepted trace: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("round trip drifted:\n%+v\nvs\n%+v", got, again)
		}
	})
}
