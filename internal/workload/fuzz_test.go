package workload

import (
	"bytes"
	"testing"
)

// FuzzReadJSON: the trace decoder must never panic and must never accept a
// structurally invalid trace, whatever bytes arrive.
func FuzzReadJSON(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, junk.
	var valid bytes.Buffer
	tr, err := Record(MustPreset("vips"), 1, 0.1)
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"name":"x","phases":[],"entries":[]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validator's own contract.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", verr)
		}
	})
}
