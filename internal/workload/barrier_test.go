package workload

import (
	"testing"

	"repro/internal/rng"
)

func workPhase() Phase {
	return Phase{Class: Compute, BaseCPI: 1.0, MPKI: 0, MemLatencyNs: 80, Activity: 0.9}
}

func TestNewBarrierAppValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewBarrierApp(0, workPhase(), 1e6, 0, r); err == nil {
		t.Fatal("expected error for zero lanes")
	}
	if _, err := NewBarrierApp(4, Phase{}, 1e6, 0, r); err == nil {
		t.Fatal("expected error for invalid phase")
	}
	if _, err := NewBarrierApp(4, workPhase(), 0, 0, r); err == nil {
		t.Fatal("expected error for zero quota")
	}
	if _, err := NewBarrierApp(4, workPhase(), 1e6, 1.0, r); err == nil {
		t.Fatal("expected error for imbalance >= 1")
	}
	if _, err := NewBarrierApp(4, workPhase(), 1e6, 0, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestBarrierSuperstepCycle(t *testing.T) {
	app, err := NewBarrierApp(2, workPhase(), 1000, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	l0, l1 := app.Lane(0), app.Lane(1)

	// Both start working.
	if l0.PhaseIndex() != 0 || l1.PhaseIndex() != 0 {
		t.Fatal("lanes should start in the work phase")
	}
	if l0.Phase().Class != Compute {
		t.Fatal("work phase class wrong")
	}

	// Lane 0 finishes its quota; it must wait (work→wait = 1 change).
	if ch := l0.AdvanceWork(1e-3, 1000); ch != 1 {
		t.Fatalf("lane 0 finishing quota: %d changes, want 1", ch)
	}
	if l0.PhaseIndex() != 1 || l0.Phase().Class != Idle {
		t.Fatal("finished lane not waiting")
	}
	if app.Supersteps() != 0 {
		t.Fatal("barrier released early")
	}

	// Waiting lane makes no further progress.
	if ch := l0.AdvanceWork(1e-3, 999999); ch != 0 {
		t.Fatalf("waiting lane reported %d changes", ch)
	}

	// Lane 1 arrives: barrier releases, both return to work. Lane 1 sees
	// two changes (work→wait and wait→work).
	if ch := l1.AdvanceWork(1e-3, 1000); ch != 2 {
		t.Fatalf("last lane arriving: %d changes, want 2", ch)
	}
	if app.Supersteps() != 1 {
		t.Fatalf("supersteps = %d, want 1", app.Supersteps())
	}
	if l0.PhaseIndex() != 0 || l1.PhaseIndex() != 0 {
		t.Fatal("lanes not released after the barrier")
	}
}

func TestBarrierPartialProgressAccumulates(t *testing.T) {
	app, _ := NewBarrierApp(1, workPhase(), 1000, 0, rng.New(1))
	l := app.Lane(0)
	// A single lane releases its own barrier immediately upon arrival.
	if ch := l.AdvanceWork(1e-3, 600); ch != 0 {
		t.Fatal("premature phase change")
	}
	if ch := l.AdvanceWork(1e-3, 600); ch != 2 {
		t.Fatalf("quota completion: %d changes, want 2 (arrive + release)", ch)
	}
	if app.Supersteps() != 1 {
		t.Fatal("superstep not counted")
	}
}

func TestBarrierImbalanceSpreadsQuotas(t *testing.T) {
	app, err := NewBarrierApp(32, workPhase(), 1e6, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	min, max := app.lanes[0].quota, app.lanes[0].quota
	for _, l := range app.lanes {
		if l.quota < min {
			min = l.quota
		}
		if l.quota > max {
			max = l.quota
		}
		if l.quota < 0.7e6-1 || l.quota > 1.3e6+1 {
			t.Fatalf("quota %v outside imbalance bounds", l.quota)
		}
	}
	if max-min < 0.1e6 {
		t.Fatalf("imbalance produced too little spread: [%v, %v]", min, max)
	}
}

func TestBarrierSlowLaneGatesProgress(t *testing.T) {
	// Two lanes, equal quotas; lane 1 retires at half speed. Superstep
	// rate must be set by the slow lane.
	app, _ := NewBarrierApp(2, workPhase(), 1000, 0, rng.New(1))
	fast, slow := app.Lane(0), app.Lane(1)
	for step := 0; step < 100; step++ {
		fast.AdvanceWork(1e-3, 200)
		slow.AdvanceWork(1e-3, 100)
	}
	// Slow lane needs 10 steps per superstep → 10 supersteps in 100 steps.
	if got := app.Supersteps(); got != 10 {
		t.Fatalf("supersteps = %d, want 10 (gated by the slow lane)", got)
	}
}

func TestBarrierAdvanceFallback(t *testing.T) {
	app, _ := NewBarrierApp(1, workPhase(), 2.5e6, 0, rng.New(1))
	l := app.Lane(0)
	// At the nominal 2.5 GHz with CPI 1.0, 1 ms retires 2.5e6 instructions
	// — exactly one quota.
	if ch := l.Advance(1e-3); ch != 2 {
		t.Fatalf("Advance fallback: %d changes, want 2", ch)
	}
}

func TestBarrierAdvanceWorkPanicsOnNegative(t *testing.T) {
	app, _ := NewBarrierApp(1, workPhase(), 1000, 0, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	app.Lane(0).AdvanceWork(-1, 0)
}
