package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rng"
)

// TraceEntry is one phase residency in a recorded trace.
type TraceEntry struct {
	PhaseIdx int     `json:"phase"`
	DurS     float64 `json:"dur_s"`
}

// Trace is a recorded phase sequence that can be replayed deterministically,
// e.g. to run every controller against the *same* workload realisation.
type Trace struct {
	Name    string       `json:"name"`
	Phases  []Phase      `json:"phases"`
	Entries []TraceEntry `json:"entries"`
}

// Validate reports the first structural problem in the trace.
func (t Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: trace %q has no phase table", t.Name)
	}
	for i, ph := range t.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("workload: trace %q phase %d: %w", t.Name, i, err)
		}
	}
	if len(t.Entries) == 0 {
		return fmt.Errorf("workload: trace %q has no entries", t.Name)
	}
	for i, e := range t.Entries {
		if e.PhaseIdx < 0 || e.PhaseIdx >= len(t.Phases) {
			return fmt.Errorf("workload: trace %q entry %d references phase %d of %d", t.Name, i, e.PhaseIdx, len(t.Phases))
		}
		if e.DurS <= 0 {
			return fmt.Errorf("workload: trace %q entry %d has non-positive duration %g", t.Name, i, e.DurS)
		}
	}
	return nil
}

// TotalDurS returns the total recorded duration.
func (t Trace) TotalDurS() float64 {
	total := 0.0
	for _, e := range t.Entries {
		total += e.DurS
	}
	return total
}

// Record runs a fresh process over spec for at least totalS seconds and
// returns the phase sequence it took.
func Record(spec Spec, seed uint64, totalS float64) (Trace, error) {
	p, err := NewProcess(spec, rng.New(seed))
	if err != nil {
		return Trace{}, err
	}
	if totalS <= 0 {
		return Trace{}, fmt.Errorf("workload: non-positive trace duration %g", totalS)
	}
	tr := Trace{Name: spec.Name, Phases: make([]Phase, len(spec.Phases))}
	for i, ps := range spec.Phases {
		tr.Phases[i] = ps.Phase
	}
	elapsed := 0.0
	// Walk the process phase boundary by phase boundary. The process's
	// remaining-duration field is private, so advance in small steps and
	// coalesce runs of the same phase index into entries.
	const step = 1e-4
	currentIdx := p.PhaseIndex()
	currentDur := 0.0
	for elapsed < totalS {
		changes := p.Advance(step)
		currentDur += step
		elapsed += step
		if changes > 0 {
			tr.Entries = append(tr.Entries, TraceEntry{PhaseIdx: currentIdx, DurS: currentDur})
			currentIdx = p.PhaseIndex()
			currentDur = 0
		}
	}
	if currentDur > 0 {
		tr.Entries = append(tr.Entries, TraceEntry{PhaseIdx: currentIdx, DurS: currentDur})
	}
	return tr, nil
}

// Replayer replays a Trace as a Source, looping when the trace is exhausted
// so runs longer than the recording still see stationary behaviour.
type Replayer struct {
	trace      Trace
	entry      int
	remainingS float64
}

// NewReplayer creates a replayer positioned at the start of the trace.
func NewReplayer(t Trace) (*Replayer, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Replayer{trace: t, remainingS: t.Entries[0].DurS}, nil
}

// Phase returns the active phase.
func (r *Replayer) Phase() Phase {
	return r.trace.Phases[r.trace.Entries[r.entry].PhaseIdx]
}

// PhaseIndex returns the active phase's index in the trace's phase table.
func (r *Replayer) PhaseIndex() int { return r.trace.Entries[r.entry].PhaseIdx }

// Advance moves forward dt seconds, looping over the trace as needed.
func (r *Replayer) Advance(dt float64) int {
	if dt < 0 {
		panic(fmt.Sprintf("workload: negative dt %g", dt))
	}
	changes := 0
	for dt >= r.remainingS {
		dt -= r.remainingS
		r.entry = (r.entry + 1) % len(r.trace.Entries)
		r.remainingS = r.trace.Entries[r.entry].DurS
		changes++
	}
	r.remainingS -= dt
	return changes
}

// WriteJSON serialises the trace.
func (t Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserialises and validates a trace.
func ReadJSON(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
