package workload

import (
	"bytes"
	"math"
	"testing"
)

func TestRecordBasics(t *testing.T) {
	tr, err := Record(MustPreset("bodytrack"), 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Name != "bodytrack" {
		t.Fatalf("trace name = %q", tr.Name)
	}
	if got := tr.TotalDurS(); got < 1.0-1e-6 {
		t.Fatalf("trace covers %v s, want >= 1.0", got)
	}
	if len(tr.Entries) < 5 {
		t.Fatalf("trace has only %d entries over 1 s", len(tr.Entries))
	}
}

func TestRecordRejectsBadInput(t *testing.T) {
	if _, err := Record(MustPreset("vips"), 1, 0); err == nil {
		t.Fatal("expected error for zero duration")
	}
	bad := twoPhaseSpec()
	bad.Name = ""
	if _, err := Record(bad, 1, 1); err == nil {
		t.Fatal("expected error for invalid spec")
	}
}

func TestTraceValidate(t *testing.T) {
	good := Trace{
		Name:    "x",
		Phases:  []Phase{{BaseCPI: 1, Activity: 0.5, MemLatencyNs: 80}},
		Entries: []TraceEntry{{PhaseIdx: 0, DurS: 0.1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{Name: "x", Entries: []TraceEntry{{0, 0.1}}},
		{Name: "x", Phases: good.Phases},
		{Name: "x", Phases: good.Phases, Entries: []TraceEntry{{PhaseIdx: 3, DurS: 0.1}}},
		{Name: "x", Phases: good.Phases, Entries: []TraceEntry{{PhaseIdx: 0, DurS: 0}}},
		{Name: "x", Phases: []Phase{{BaseCPI: -1}}, Entries: good.Entries},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestReplayerFollowsTrace(t *testing.T) {
	tr := Trace{
		Name: "r",
		Phases: []Phase{
			{Class: Compute, BaseCPI: 0.8, Activity: 0.9, MemLatencyNs: 80},
			{Class: Memory, BaseCPI: 1.2, MPKI: 20, Activity: 0.4, MemLatencyNs: 80},
		},
		Entries: []TraceEntry{
			{PhaseIdx: 0, DurS: 0.010},
			{PhaseIdx: 1, DurS: 0.005},
		},
	}
	r, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.PhaseIndex() != 0 {
		t.Fatal("replayer should start at entry 0")
	}
	if ch := r.Advance(0.010); ch != 1 || r.PhaseIndex() != 1 {
		t.Fatalf("after 10ms: changes=%d idx=%d", ch, r.PhaseIndex())
	}
	// Trace loops: 5ms more returns to entry 0.
	if ch := r.Advance(0.005); ch != 1 || r.PhaseIndex() != 0 {
		t.Fatalf("loop failed: changes=%d idx=%d", ch, r.PhaseIndex())
	}
}

func TestReplayerMatchesRecordedProcessStatistics(t *testing.T) {
	// Replaying a long recording should reproduce the source's average CPI.
	spec := MustPreset("ferret")
	tr, err := Record(spec, 21, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	const f = 2.5e9
	const step = 1e-3
	sum := 0.0
	n := int(5.0 / step)
	for i := 0; i < n; i++ {
		sum += r.Phase().CPIAt(f)
		r.Advance(step)
	}
	replayCPI := sum / float64(n)
	c, err := Characterize(spec, 21, 5.0, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replayCPI-c.MeanCPI)/c.MeanCPI > 0.05 {
		t.Fatalf("replay mean CPI %v differs from recorded process %v", replayCPI, c.MeanCPI)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, err := Record(MustPreset("x264"), 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || len(back.Entries) != len(tr.Entries) || len(back.Phases) != len(tr.Phases) {
		t.Fatal("round trip lost structure")
	}
	for i := range tr.Entries {
		if back.Entries[i] != tr.Entries[i] {
			t.Fatalf("entry %d changed: %+v vs %+v", i, back.Entries[i], tr.Entries[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"name":"x"}`)); err == nil {
		t.Fatal("expected validation error for empty trace")
	}
}

func TestNewReplayerRejectsInvalid(t *testing.T) {
	if _, err := NewReplayer(Trace{}); err == nil {
		t.Fatal("expected error")
	}
}
