package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Compute: "compute",
		Mixed:   "mixed",
		Memory:  "memory",
		Bursty:  "bursty",
		Idle:    "idle",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Class(99).String(); got != "Class(99)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestPhaseValidate(t *testing.T) {
	good := Phase{BaseCPI: 1, MPKI: 5, MemLatencyNs: 80, Activity: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Phase{
		{BaseCPI: 0, MPKI: 5, MemLatencyNs: 80, Activity: 0.5},
		{BaseCPI: -1, MPKI: 5, MemLatencyNs: 80, Activity: 0.5},
		{BaseCPI: 1, MPKI: -1, MemLatencyNs: 80, Activity: 0.5},
		{BaseCPI: 1, MPKI: 5, MemLatencyNs: -1, Activity: 0.5},
		{BaseCPI: 1, MPKI: 5, MemLatencyNs: 80, Activity: 1.5},
		{BaseCPI: 1, MPKI: 5, MemLatencyNs: 80, Activity: -0.1},
		{BaseCPI: math.NaN(), MPKI: 5, MemLatencyNs: 80, Activity: 0.5},
	}
	for i, ph := range bad {
		if err := ph.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, ph)
		}
	}
}

func TestCPIComputeBoundFlat(t *testing.T) {
	ph := Phase{BaseCPI: 0.8, MPKI: 0, MemLatencyNs: 80, Activity: 1}
	if got := ph.CPIAt(1e9); got != 0.8 {
		t.Fatalf("CPI at 1 GHz = %v, want 0.8", got)
	}
	if got := ph.CPIAt(4e9); got != 0.8 {
		t.Fatalf("CPI at 4 GHz = %v, want 0.8 (no memory component)", got)
	}
}

func TestCPIMemoryGrowsWithFrequency(t *testing.T) {
	ph := Phase{BaseCPI: 1.0, MPKI: 20, MemLatencyNs: 80, Activity: 0.4}
	lo := ph.CPIAt(1e9)
	hi := ph.CPIAt(4e9)
	if hi <= lo {
		t.Fatalf("memory-bound CPI did not grow with frequency: %v vs %v", lo, hi)
	}
	// Analytic check: CPI(f) = 1 + 0.02*80e-9*f.
	want := 1 + 0.02*80e-9*4e9
	if math.Abs(hi-want) > 1e-9 {
		t.Fatalf("CPI at 4 GHz = %v, want %v", hi, want)
	}
}

func TestIPSSublinearForMemoryBound(t *testing.T) {
	ph := Phase{BaseCPI: 1.0, MPKI: 20, MemLatencyNs: 80, Activity: 0.4}
	ips1 := ph.IPSAt(1e9)
	ips4 := ph.IPSAt(4e9)
	if ips4 <= ips1 {
		t.Fatal("IPS must still increase with frequency")
	}
	if ips4/ips1 >= 4 {
		t.Fatalf("memory-bound speedup %v should be well below 4x", ips4/ips1)
	}
}

func TestIPSLinearForComputeBound(t *testing.T) {
	ph := Phase{BaseCPI: 0.8, MPKI: 0, MemLatencyNs: 80, Activity: 1}
	ratio := ph.IPSAt(4e9) / ph.IPSAt(1e9)
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("compute-bound speedup = %v, want exactly 4", ratio)
	}
}

func TestIPSZeroAtZeroFreq(t *testing.T) {
	ph := Phase{BaseCPI: 1, MPKI: 1, MemLatencyNs: 80, Activity: 1}
	if got := ph.IPSAt(0); got != 0 {
		t.Fatalf("IPS at 0 Hz = %v", got)
	}
}

func TestMemBoundednessRange(t *testing.T) {
	compute := Phase{BaseCPI: 0.8, MPKI: 0, MemLatencyNs: 80, Activity: 1}
	if got := compute.MemBoundednessAt(3e9); got != 0 {
		t.Fatalf("compute-bound mem-boundedness = %v, want 0", got)
	}
	mem := Phase{BaseCPI: 1.0, MPKI: 30, MemLatencyNs: 100, Activity: 0.3}
	got := mem.MemBoundednessAt(3.6e9)
	if got <= 0.85 || got >= 1 {
		t.Fatalf("heavily memory-bound mem-boundedness = %v, want in (0.85, 1)", got)
	}
}

func TestScale(t *testing.T) {
	ph := Phase{BaseCPI: 1.0, MPKI: 10, MemLatencyNs: 80, Activity: 0.5}
	s := ph.Scale(1.2)
	if s.BaseCPI != 1.2 || s.MPKI != 12 {
		t.Fatalf("Scale(1.2) = %+v", s)
	}
	if s.MemLatencyNs != 80 || s.Activity != 0.5 {
		t.Fatal("Scale must not touch latency or activity")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	Phase{BaseCPI: 1}.Scale(0)
}

// Property: IPS is monotone non-decreasing in frequency for any valid phase.
func TestQuickIPSMonotone(t *testing.T) {
	f := func(cpiRaw, mpkiRaw, f1Raw, f2Raw uint16) bool {
		ph := Phase{
			BaseCPI:      0.5 + float64(cpiRaw%20)/10,
			MPKI:         float64(mpkiRaw % 40),
			MemLatencyNs: 80,
			Activity:     0.5,
		}
		fa := 0.5e9 + float64(f1Raw)*1e6
		fb := 0.5e9 + float64(f2Raw)*1e6
		if fa > fb {
			fa, fb = fb, fa
		}
		return ph.IPSAt(fa) <= ph.IPSAt(fb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mem-boundedness is always in [0, 1) and monotone in frequency.
func TestQuickMemBoundednessBounds(t *testing.T) {
	f := func(mpkiRaw, fRaw uint16) bool {
		ph := Phase{BaseCPI: 1, MPKI: float64(mpkiRaw % 50), MemLatencyNs: 80, Activity: 0.5}
		fr := 0.5e9 + float64(fRaw)*1e6
		b := ph.MemBoundednessAt(fr)
		if b < 0 || b >= 1 {
			return false
		}
		return ph.MemBoundednessAt(fr) <= ph.MemBoundednessAt(fr*2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
