package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func twoPhaseSpec() Spec {
	return Spec{
		Name: "test",
		Phases: []PhaseSpec{
			{Phase: computePhase(0.8, 1, 0.9), MeanDurS: 0.010, DurJitter: 0},
			{Phase: memoryPhase(1.2, 18, 0.4), MeanDurS: 0.020, DurJitter: 0},
		},
		Transitions: [][]float64{
			{0, 1},
			{1, 0},
		},
	}
}

func TestSpecValidateGood(t *testing.T) {
	if err := twoPhaseSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateBad(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases[0].BaseCPI = -1 },
		func(s *Spec) { s.Phases[0].MeanDurS = 0 },
		func(s *Spec) { s.Phases[0].DurJitter = 1.0 },
		func(s *Spec) { s.Transitions = s.Transitions[:1] },
		func(s *Spec) { s.Transitions[0] = s.Transitions[0][:1] },
		func(s *Spec) { s.Transitions[0] = []float64{-1, 1} },
		func(s *Spec) { s.Transitions[0] = []float64{0, 0} },
		func(s *Spec) { s.Start = 5 },
		func(s *Spec) { s.Start = -1 },
	}
	for i, mutate := range mutations {
		s := twoPhaseSpec()
		// Deep-copy mutable innards so mutations don't leak across cases.
		s.Phases = append([]PhaseSpec(nil), s.Phases...)
		s.Transitions = [][]float64{
			append([]float64(nil), s.Transitions[0]...),
			append([]float64(nil), s.Transitions[1]...),
		}
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestProcessDeterministicPhaseSequence(t *testing.T) {
	spec := twoPhaseSpec()
	p1, err := NewProcess(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewProcess(spec, rng.New(1))
	for i := 0; i < 1000; i++ {
		p1.Advance(0.001)
		p2.Advance(0.001)
		if p1.PhaseIndex() != p2.PhaseIndex() {
			t.Fatalf("same-seed processes diverged at step %d", i)
		}
	}
}

func TestProcessAlternatesDeterministically(t *testing.T) {
	// With jitter 0 and a deterministic 0↔1 chain, phase boundaries are at
	// exact multiples of the durations: 10ms in phase 0, 20ms in phase 1.
	p, _ := NewProcess(twoPhaseSpec(), rng.New(1))
	if p.PhaseIndex() != 0 {
		t.Fatal("should start in phase 0")
	}
	changes := p.Advance(0.010)
	if changes != 1 || p.PhaseIndex() != 1 {
		t.Fatalf("after 10ms: changes=%d idx=%d, want 1, 1", changes, p.PhaseIndex())
	}
	changes = p.Advance(0.020)
	if changes != 1 || p.PhaseIndex() != 0 {
		t.Fatalf("after +20ms: changes=%d idx=%d, want 1, 0", changes, p.PhaseIndex())
	}
}

func TestProcessAdvanceManyPhasesAtOnce(t *testing.T) {
	p, _ := NewProcess(twoPhaseSpec(), rng.New(1))
	// One full cycle is 30ms; 95ms covers 3 cycles plus 5ms: boundary count
	// is 10ms,30ms,40ms,60ms,70ms,90ms → 6 changes.
	changes := p.Advance(0.095)
	if changes != 6 {
		t.Fatalf("Advance(95ms) crossed %d boundaries, want 6", changes)
	}
	if p.PhaseIndex() != 0 {
		t.Fatalf("after 95ms should be in phase 0, got %d", p.PhaseIndex())
	}
}

func TestProcessAdvanceNegativePanics(t *testing.T) {
	p, _ := NewProcess(twoPhaseSpec(), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	p.Advance(-1)
}

func TestScaledProcess(t *testing.T) {
	spec := twoPhaseSpec()
	p, err := NewScaledProcess(spec, rng.New(1), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ph := p.Phase()
	if math.Abs(ph.BaseCPI-0.8*1.5) > 1e-12 {
		t.Fatalf("scaled BaseCPI = %v, want %v", ph.BaseCPI, 0.8*1.5)
	}
	if _, err := NewScaledProcess(spec, rng.New(1), 0); err == nil {
		t.Fatal("expected error for zero scale")
	}
}

func TestNewProcessRejectsInvalidSpec(t *testing.T) {
	s := twoPhaseSpec()
	s.Name = ""
	if _, err := NewProcess(s, rng.New(1)); err == nil {
		t.Fatal("expected error for invalid spec")
	}
}

func TestDurationJitterBounds(t *testing.T) {
	spec := twoPhaseSpec()
	spec.Phases[0].DurJitter = 0.5
	spec.Transitions = [][]float64{{1, 0}, {1, 0}} // stay in phase 0
	p, _ := NewProcess(spec, rng.New(3))
	// Observe many phase residencies by stepping finely; all should lie in
	// [5ms, 15ms]. We detect boundaries via Advance's return.
	const step = 1e-4
	dur := 0.0
	seen := 0
	for i := 0; i < 200000 && seen < 50; i++ {
		ch := p.Advance(step)
		dur += step
		if ch > 0 {
			if dur < 0.005-2*step || dur > 0.015+2*step {
				t.Fatalf("phase residency %v outside jitter bounds [5ms, 15ms]", dur)
			}
			dur = 0
			seen++
		}
	}
	if seen < 50 {
		t.Fatalf("observed only %d phase boundaries", seen)
	}
}

func TestCharacterize(t *testing.T) {
	c, err := Characterize(MustPreset("canneal"), 7, 2.0, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "canneal" {
		t.Fatalf("name = %q", c.Name)
	}
	if c.MemBoundedness < 0.4 {
		t.Fatalf("canneal mem-boundedness = %v, want heavily memory-bound", c.MemBoundedness)
	}
	if c.MeanCPI <= 1 {
		t.Fatalf("canneal mean CPI = %v, want > 1", c.MeanCPI)
	}
	if c.PhaseRatePerS <= 0 {
		t.Fatal("no phase changes observed")
	}

	cs, err := Characterize(MustPreset("swaptions"), 7, 2.0, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MemBoundedness >= c.MemBoundedness {
		t.Fatalf("swaptions (%v) should be less memory-bound than canneal (%v)",
			cs.MemBoundedness, c.MemBoundedness)
	}
}
