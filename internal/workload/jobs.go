package workload

import (
	"fmt"

	"repro/internal/rng"
)

// JobSystem models a multiprogrammed server chip: jobs arrive in a shared
// queue as a Poisson process, each needing an exponentially distributed
// number of instructions; an idle core pops the next job and runs it to
// completion. Progress is instruction-coupled (a throttled core takes
// longer), and cores with no job sit in a near-idle clock-gated phase.
// This is the latency-vs-power scenario of power capping in datacentres:
// the cap throttles service rate, queueing delay responds non-linearly.
type JobSystem struct {
	r              *rng.RNG
	arrivalRate    float64 // jobs per second (whole system)
	meanJobInstr   float64
	work           Phase
	idle           Phase
	lanes          []*jobLane
	queue          []job
	clockS         float64
	nextArrivalS   float64
	pendingTicks   int
	completed      int
	totalLatencyS  float64
	totalQueuedMax int
}

type job struct {
	remaining float64
	arrivalS  float64
}

type jobLane struct {
	sys     *JobSystem
	current *job
}

// NewJobSystem creates a job system serviced by n cores. work is the phase
// jobs execute; arrivalRate is system-wide jobs/second; meanJobInstr is
// the mean job length in instructions.
func NewJobSystem(n int, work Phase, arrivalRate, meanJobInstr float64, r *rng.RNG) (*JobSystem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: job system needs cores, got %d", n)
	}
	if err := work.Validate(); err != nil {
		return nil, err
	}
	if arrivalRate <= 0 || meanJobInstr <= 0 {
		return nil, fmt.Errorf("workload: invalid rate %g or job size %g", arrivalRate, meanJobInstr)
	}
	if r == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	s := &JobSystem{
		r:            r,
		arrivalRate:  arrivalRate,
		meanJobInstr: meanJobInstr,
		work:         work,
		// A jobless core is clock-gated: almost no switching activity and
		// no frequency sensitivity.
		idle: Phase{Class: Idle, BaseCPI: 1.0, MPKI: 30, MemLatencyNs: 100, Activity: 0.02},
	}
	s.nextArrivalS = s.r.ExpFloat64() / s.arrivalRate
	for i := 0; i < n; i++ {
		s.lanes = append(s.lanes, &jobLane{sys: s})
	}
	return s, nil
}

// Lane returns core i's workload source.
func (s *JobSystem) Lane(i int) WorkSource { return s.lanes[i] }

// Completed returns the number of finished jobs.
func (s *JobSystem) Completed() int { return s.completed }

// MeanLatencyS returns the average arrival-to-completion latency of the
// finished jobs, or 0 before any completion.
func (s *JobSystem) MeanLatencyS() float64 {
	if s.completed == 0 {
		return 0
	}
	return s.totalLatencyS / float64(s.completed)
}

// Queued returns the current backlog (queued jobs not yet running).
func (s *JobSystem) Queued() int { return len(s.queue) }

// MaxQueued returns the worst backlog observed.
func (s *JobSystem) MaxQueued() int { return s.totalQueuedMax }

// ResetStats clears completion statistics (e.g. after warmup) while
// keeping the queue and in-flight jobs intact.
func (s *JobSystem) ResetStats() {
	s.completed = 0
	s.totalLatencyS = 0
	s.totalQueuedMax = len(s.queue)
}

// tick advances the shared clock once all lanes have reported the epoch.
// The harness must step every lane with the same dt for the accounting to
// be exact (the simulator does).
func (s *JobSystem) tick(dt float64) {
	s.pendingTicks++
	if s.pendingTicks < len(s.lanes) {
		return
	}
	s.pendingTicks = 0
	s.clockS += dt
	for s.nextArrivalS <= s.clockS {
		s.queue = append(s.queue, job{
			remaining: s.r.ExpFloat64() * s.meanJobInstr,
			arrivalS:  s.nextArrivalS,
		})
		s.nextArrivalS += s.r.ExpFloat64() / s.arrivalRate
	}
	if len(s.queue) > s.totalQueuedMax {
		s.totalQueuedMax = len(s.queue)
	}
}

// Phase implements Source.
func (l *jobLane) Phase() Phase {
	if l.current == nil {
		return l.sys.idle
	}
	return l.sys.work
}

// PhaseIndex implements Source: 0 = running a job, 1 = idle.
func (l *jobLane) PhaseIndex() int {
	if l.current == nil {
		return 1
	}
	return 0
}

// AdvanceWork implements WorkSource.
func (l *jobLane) AdvanceWork(dt, instructions float64) int {
	if dt < 0 || instructions < 0 {
		panic(fmt.Sprintf("workload: negative advance (dt=%g, instr=%g)", dt, instructions))
	}
	changes := 0
	if l.current != nil {
		l.current.remaining -= instructions
		if l.current.remaining <= 0 {
			l.sys.completed++
			l.sys.totalLatencyS += (l.sys.clockS + dt) - l.current.arrivalS
			l.current = nil
			changes++
		}
	}
	l.sys.tick(dt)
	if l.current == nil && len(l.sys.queue) > 0 {
		j := l.sys.queue[0]
		l.sys.queue = l.sys.queue[1:]
		l.current = &j
		changes++
	}
	return changes
}

// Advance implements Source with nominal-throughput progress (see
// barrierLane.Advance).
func (l *jobLane) Advance(dt float64) int {
	const nominalHz = 2.5e9
	instr := 0.0
	if l.current != nil {
		instr = l.sys.work.IPSAt(nominalHz) * dt
	}
	return l.AdvanceWork(dt, instr)
}
