package par

import (
	"runtime"
	"sync"
)

// Pool is a persistent chunked-dispatch worker pool: the goroutines are
// spawned once at construction and park on a channel between calls, so a
// caller that dispatches the same index space every epoch (the chip step
// kernel, the OD-RL local phase) pays a channel handoff per shard per
// epoch instead of a goroutine spawn + scheduler wakeup per shard per
// epoch. Dispatch is allocation-free: the chunk descriptors travel by
// value and completion is tracked by a WaitGroup owned by the pool.
//
// Determinism: ForEachChunk splits [0, n) with arithmetic identical to the
// package-level ForEachChunk, so a caller obeying the package contract
// (index-owned writes, randomness pre-split before dispatch) produces
// bit-identical results whether it uses a Pool, the fork/join helper, or a
// plain sequential loop. Scheduling order across parked workers is
// unobservable by construction.
//
// A Pool must be used by one goroutine at a time (calls are fully
// synchronous — ForEachChunk returns only after every chunk ran — and the
// completion WaitGroup is reused across calls). Close releases the
// workers; it is idempotent, must not race a ForEachChunk, and a closed
// pool falls back to inline sequential execution, so a late caller
// degrades to correct-but-serial rather than deadlocking. Workers hold a
// reference to the request channel only, never to the Pool, so an
// abandoned Pool is collectable and a finalizer closes it — Close is
// still worth calling for prompt shutdown.
type Pool struct {
	workers int
	req     chan poolChunk
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type poolChunk struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

// NewPool spawns a persistent pool (workers <= 0 means DefaultWorkers).
// The calling goroutine always executes the first chunk itself, so a pool
// sized w parks w-1 workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		req:     make(chan poolChunk, workers),
	}
	for i := 0; i < workers-1; i++ {
		go poolWorker(p.req)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// poolWorker deliberately receives the channel, not the *Pool: a parked
// worker must not keep an abandoned pool reachable, or its finalizer
// could never run and the goroutines would leak for the process lifetime.
func poolWorker(req <-chan poolChunk) {
	for c := range req {
		c.fn(c.lo, c.hi)
		c.done.Done()
	}
}

// Workers reports the pool's worker budget (including the caller).
func (p *Pool) Workers() int { return p.workers }

// ForEachChunk splits [0, n) into at most min(p.Workers(), n) contiguous
// chunks and runs fn(lo, hi) once per chunk, returning after all chunks
// completed. Chunk boundaries match the package-level ForEachChunk
// exactly. The caller's goroutine runs the first chunk; remaining chunks
// go to the parked workers.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 || p.isClosed() {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.wg.Add(1)
		p.req <- poolChunk{lo: lo, hi: hi, fn: fn, done: &p.wg}
	}
	fn(0, chunk)
	p.wg.Wait()
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close parks the pool permanently: the worker goroutines exit and later
// ForEachChunk calls run inline. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.req)
	runtime.SetFinalizer(p, nil)
}
