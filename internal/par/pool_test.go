package par

import (
	"sync/atomic"
	"testing"
)

// poolChunks records the chunk boundaries a dispatch produced, in index
// order (chunks are disjoint so index-addressed writes need no lock).
func poolChunks(dispatch func(n int, fn func(lo, hi int)), n int) [][2]int {
	bounds := make([][2]int, n)
	var count atomic.Int64
	dispatch(n, func(lo, hi int) {
		bounds[lo] = [2]int{lo, hi}
		count.Add(1)
	})
	out := make([][2]int, 0, count.Load())
	for lo := 0; lo < n; {
		b := bounds[lo]
		if b[1] <= lo {
			break
		}
		out = append(out, b)
		lo = b[1]
	}
	return out
}

// TestPoolChunkBoundariesMatchForEachChunk pins the determinism premise:
// a Pool must split the index space exactly like the fork/join helper, for
// every (workers, n) shape, so swapping one for the other can never change
// which indices share a chunk.
func TestPoolChunkBoundariesMatchForEachChunk(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 5, 8, 64, 100, 127, 128, 129, 1024} {
			want := poolChunks(func(n int, fn func(lo, hi int)) {
				ForEachChunk(workers, n, fn)
			}, n)
			got := poolChunks(p.ForEachChunk, n)
			if len(got) != len(want) {
				t.Fatalf("workers=%d n=%d: pool made %d chunks, ForEachChunk %d", workers, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d n=%d chunk %d: pool %v, ForEachChunk %v", workers, n, i, got[i], want[i])
				}
			}
			// Every index must be covered exactly once.
			covered := 0
			for _, b := range got {
				covered += b[1] - b[0]
			}
			if covered != n {
				t.Fatalf("workers=%d n=%d: chunks cover %d indices", workers, n, covered)
			}
		}
		p.Close()
	}
}

// TestPoolReuse exercises the park/wake cycle many times on one pool: the
// sum computed through index-owned slots must be right on every epoch, and
// no dispatch may return before all its chunks ran.
func TestPoolReuse(t *testing.T) {
	const n = 257
	p := NewPool(4)
	defer p.Close()
	slot := make([]int, n)
	for epoch := 1; epoch <= 200; epoch++ {
		p.ForEachChunk(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				slot[i] = epoch * i
			}
		})
		sum := 0
		for i := 0; i < n; i++ {
			sum += slot[i]
		}
		if want := epoch * (n - 1) * n / 2; sum != want {
			t.Fatalf("epoch %d: sum %d, want %d", epoch, sum, want)
		}
	}
}

// TestPoolCloseFallsBackInline: a closed pool must still execute calls
// (inline), never hang or panic.
func TestPoolCloseFallsBackInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	var ran atomic.Int64
	p.ForEachChunk(100, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 100 {
		t.Fatalf("closed pool ran %d of 100 indices", ran.Load())
	}
}

func TestPoolWorkersNormalised(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != DefaultWorkers() {
		t.Fatalf("NewPool(0).Workers() = %d, want DefaultWorkers %d", p.Workers(), DefaultWorkers())
	}
	p1 := NewPool(-3)
	defer p1.Close()
	if p1.Workers() < 1 {
		t.Fatalf("NewPool(-3).Workers() = %d", p1.Workers())
	}
}
