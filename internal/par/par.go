// Package par is the deterministic parallelism layer shared by the
// simulator's inner loops (per-core chip stepping, OD-RL local updates)
// and the experiment harness's outer loops (benchmark × controller,
// budget-point, core-count and seed fan-out).
//
// Determinism contract: every helper here dispatches a fixed index space
// [0, n) to a bounded worker pool, and callers write results only to
// index-addressed slots. Work items must not share mutable state, and any
// randomness a work item needs must come from a pre-split rng.RNG derived
// from the run seed *before* dispatch (see SplitRNGs). Under that contract
// the scheduling order is unobservable, so output with Workers=N is
// bit-identical to Workers=1 — the property the determinism regression
// tests pin down.
//
// The package is dependency-free (stdlib plus internal/rng) and allocates
// only the result slice and one small header per call.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalises a worker-count knob: values <= 0 mean DefaultWorkers,
// and the count is never larger than n (no idle goroutines).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines. Indices are handed out dynamically (an atomic cursor), which
// balances uneven work items; fn must only write to state owned by index i.
// workers <= 0 means DefaultWorkers. With one worker (or n <= 1) everything
// runs inline on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into at most workers contiguous chunks and
// runs fn(lo, hi) once per chunk. Chunking amortises dispatch overhead for
// cheap uniform items (per-core loops) and gives each worker a cache-local
// index range. fn must only write to state owned by indices in [lo, hi).
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr runs fn(i) for every i in [0, n) across at most workers
// goroutines. All items run regardless of failures elsewhere (no
// cancellation — work items are short and side-effect free under the
// package contract); the returned error is the one from the lowest failing
// index, so the error surfaced is independent of scheduling. The result
// slice always has n entries; entries whose fn failed hold the zero value.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SplitRNGs derives n independent child generators from base, in index
// order, before any parallel dispatch. Handing child i to work item i keeps
// the random stream each item consumes a pure function of (seed, i),
// independent of how items are scheduled across workers.
func SplitRNGs(base *rng.RNG, n int) []*rng.RNG {
	out := make([]*rng.RNG, n)
	for i := range out {
		out[i] = base.Split()
	}
	return out
}
