package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0, 100); got != DefaultWorkers() {
		t.Fatalf("Workers(0,100) = %d, want %d", got, DefaultWorkers())
	}
	if got := Workers(-3, 100); got != DefaultWorkers() {
		t.Fatalf("Workers(-3,100) = %d, want %d", got, DefaultWorkers())
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", got)
	}
	if got := Workers(8, 0); got != 1 {
		t.Fatalf("Workers(8,0) = %d, want 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 999
		var hits [n]atomic.Int32
		ForEachChunk(workers, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("workers=%d: bad chunk [%d,%d)", workers, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -5, func(int) { called = true })
	ForEachChunk(4, 0, func(int, int) { called = true })
	if called {
		t.Fatal("fn called for empty index space")
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) float64 { return float64(i*i) * 1.25 }
	want := Map(1, 512, fn)
	for _, workers := range []int{2, 5, 16} {
		got := Map(workers, 512, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		out, err := MapErr(workers, 100, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 93:
				return 0, errHigh
			default:
				return i, nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
		if len(out) != 100 || out[50] != 50 {
			t.Fatalf("workers=%d: successful results not preserved", workers)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("index %d = %q", i, v)
		}
	}
}

func TestSplitRNGsIndependentOfDispatch(t *testing.T) {
	// The streams handed to work items depend only on (seed, index): the
	// same derivation done twice yields identical children.
	a := SplitRNGs(rng.New(42), 16)
	b := SplitRNGs(rng.New(42), 16)
	for i := range a {
		for k := 0; k < 10; k++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("child %d diverged at draw %d", i, k)
			}
		}
	}
}

// TestForEachParallelReduction exercises the canonical usage under -race:
// parallel workers write only index-addressed slots, the caller reduces
// sequentially afterwards, and the reduction matches the sequential run
// exactly (same float op order).
func TestForEachParallelReduction(t *testing.T) {
	const n = 4096
	vals := make([]float64, n)
	ForEach(8, n, func(i int) { vals[i] = 1.0 / float64(i+1) })
	sumPar := 0.0
	for _, v := range vals {
		sumPar += v
	}
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 1.0 / float64(i+1)
	}
	sumSeq := 0.0
	for _, v := range seq {
		sumSeq += v
	}
	if sumPar != sumSeq {
		t.Fatalf("parallel reduction %v != sequential %v", sumPar, sumSeq)
	}
}

func BenchmarkForEachChunkOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			buf := make([]float64, 1024)
			for i := 0; i < b.N; i++ {
				ForEachChunk(workers, len(buf), func(lo, hi int) {
					for j := lo; j < hi; j++ {
						buf[j] = float64(j)
					}
				})
			}
		})
	}
}
