// Package repro is the public API of the OD-RL reproduction: On-line
// Distributed Reinforcement Learning DVFS control for power-limited
// many-core systems (Chen & Marculescu, DATE 2015), together with the
// simulation substrate it is evaluated on.
//
// The package re-exports the user-facing surface of the internal packages:
//
//   - Build a controller with NewController (OD-RL or any baseline), or a
//     custom-tuned OD-RL with NewODRL.
//   - Describe a scenario with Options (core count, workload, budget,
//     schedule) and execute it with Run or RunAll.
//   - Render results with WriteSummaryTable / WriteCSV / WriteTrace.
//   - Regenerate the paper's evaluation through Experiments / ExperimentByID.
//
// A minimal session:
//
//	opts := repro.DefaultOptions()
//	opts.Cores = 64
//	opts.BudgetW = 55
//	c, err := repro.NewController("od-rl", repro.DefaultEnv(opts.Cores))
//	if err != nil { ... }
//	res, err := repro.Run(opts, c)
//	if err != nil { ... }
//	fmt.Printf("%.1f BIPS at %.1f W\n", res.Summary.BIPS(), res.Summary.MeanW)
package repro

import (
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vf"
	"repro/internal/workload"
)

// Controller is any power-management policy: OD-RL or a baseline. See
// NewController for the registry.
type Controller = ctrl.Controller

// Options configures one simulation run; see DefaultOptions for the default
// 64-core platform.
type Options = sim.Options

// BudgetStep re-caps the chip budget at a point in simulated time.
type BudgetStep = sim.BudgetStep

// Result is one finished run: summary metrics, optional power trace, final
// VF levels.
type Result = sim.Result

// TracePoint is one sample of a recorded power trace.
type TracePoint = sim.TracePoint

// Summary holds the evaluation metrics of one run.
type Summary = metrics.Summary

// Env couples a controller to its platform (core count, VF table, power
// constants, decision cadence).
type Env = sim.Env

// ODRLConfig exposes every OD-RL hyper-parameter for custom tuning.
type ODRLConfig = core.Config

// WorkloadSpec describes a synthetic benchmark as a Markov chain over
// phases.
type WorkloadSpec = workload.Spec

// DefaultOptions returns the default 64-core scenario (mix workload, 90 W
// budget, 1 ms epochs).
func DefaultOptions() Options { return sim.DefaultOptions() }

// DefaultEnv returns the default platform environment for a core count.
func DefaultEnv(cores int) Env { return sim.DefaultEnv(cores) }

// ControllerNames lists every controller NewController can build.
func ControllerNames() []string { return sim.ControllerNames() }

// NewController builds a controller by name: "od-rl", "od-rl-norealloc",
// "maxbips", "steepest-drop", "pid", "greedy" or "static".
func NewController(name string, env Env) (Controller, error) {
	return sim.NewController(name, env)
}

// DefaultODRLConfig returns the OD-RL hyper-parameters used in the paper
// reproduction.
func DefaultODRLConfig() ODRLConfig { return core.DefaultConfig() }

// NewODRL builds an OD-RL controller with custom hyper-parameters on the
// default platform's VF table and power model.
func NewODRL(cores int, cfg ODRLConfig) (Controller, error) {
	return core.New(cores, vf.Default(), power.Default(), cfg)
}

// NewIslandODRL builds the island-aware OD-RL variant: one agent per
// voltage-frequency island on a chipW×chipH grid tiled by islandW×islandH
// islands. Pair it with Options.IslandW/IslandH so the simulated hardware
// actuates at the same granularity.
func NewIslandODRL(chipW, chipH, islandW, islandH int, cfg ODRLConfig) (Controller, error) {
	return core.NewIslands(chipW, chipH, islandW, islandH, vf.Default(), power.Default(), cfg)
}

// Run executes one simulation.
func Run(opts Options, c Controller) (Result, error) { return sim.Run(opts, c) }

// RunAll runs the same scenario for several controllers by name.
func RunAll(opts Options, names []string) ([]Result, error) { return sim.RunAll(opts, names) }

// WriteSummaryTable, WriteCSV and WriteTrace render results; see package
// sim for column definitions.
var (
	WriteSummaryTable = sim.WriteSummaryTable
	WriteCSV          = sim.WriteCSV
	WriteTrace        = sim.WriteTrace
)

// WorkloadNames lists the PARSEC-like benchmark presets.
func WorkloadNames() []string { return workload.PresetNames() }

// WorkloadPreset returns one named benchmark spec.
func WorkloadPreset(name string) (WorkloadSpec, error) { return workload.Preset(name) }

// ExperimentConfig scopes a paper-evaluation run.
type ExperimentConfig = experiments.Config

// ExperimentTable is one rendered experiment result.
type ExperimentTable = experiments.Table

// DefaultExperimentConfig returns the evaluation configuration recorded in
// EXPERIMENTS.md.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// ExperimentByID returns the runner for one experiment (T1, T2, F1..F10).
func ExperimentByID(id string) (func(ExperimentConfig) (ExperimentTable, error), error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return func(c ExperimentConfig) (ExperimentTable, error) { return r(c) }, nil
}
