// Command odrl runs one power-capped many-core simulation and prints the
// measured summary for one or more controllers.
//
// Usage:
//
//	odrl -controllers od-rl,maxbips,pid -cores 64 -budget 90 -measure 8
//
// Pass -controllers all for every registered controller. Add -csv to emit
// machine-readable output and -trace FILE to dump the power trace of the
// first controller.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
	"repro/internal/obs/monitor"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed (nothing was simulated), 1 means a run failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		controllers = fs.String("controllers", "od-rl,maxbips,steepest-drop,pid,greedy,static", "comma-separated controller names, or 'all'")
		cores       = fs.Int("cores", 64, "number of cores")
		workloadF   = fs.String("workload", "mix", "workload preset name or 'mix'")
		budget      = fs.Float64("budget", 90, "chip power budget (W)")
		warmup      = fs.Float64("warmup", 2, "warmup seconds (learning continues, metrics off)")
		measure     = fs.Float64("measure", 8, "measurement seconds")
		seed        = fs.Uint64("seed", 1, "random seed")
		noise       = fs.Float64("noise", 0.02, "relative sensor noise")
		thermalOff  = fs.Bool("thermal-off", false, "disable the leakage-temperature loop")
		csvOut      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		traceFile   = fs.String("trace", "", "write the first controller's power trace CSV to this file")
		configFile  = fs.String("config", "", "run a config.Experiment JSON file instead of flags")
		writeConfig = fs.Bool("write-config", false, "print the default experiment JSON and exit")
		writeSpec   = fs.Bool("write-spec", false, "print the canonical scenario spec equivalent to this invocation (runnable with odrl-run) and exit")
		plotTrace   = fs.Bool("plot", false, "render each controller's power trace as an ASCII chart")
		faultSpec   = fs.String("fault-plan", "", "inject faults: an intensity in [0,1] for the canonical plan, or a plan JSON file path (see internal/fault)")
		traceEvents = fs.String("trace-events", "", "write structured JSONL epoch events to this file ('-' for stdout)")
		traceEvery  = fs.Int("trace-every", 1, "sample every Nth epoch in -trace-events output")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address (e.g. localhost:6060)")
		monitorOn   = fs.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = fs.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = fs.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = fs.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = fs.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = fs.String("artifacts", "", "record the run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
		ledgerDir   = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger    = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -write-spec translates the flag invocation into the declarative
	// scenario contract and exits before any observability side effects.
	if *writeSpec {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "odrl:", err)
			return 2
		}
		names := strings.Split(*controllers, ",")
		if *controllers == "all" {
			names = sim.ControllerNames()
		}
		spec := scenario.Spec{
			Workload:    *workloadF,
			Controllers: names,
			Cores:       *cores,
			BudgetW:     *budget,
			WarmupS:     *warmup,
			MeasureS:    *measure,
			Seeds:       []uint64{*seed},
			SensorNoise: noise,
			ThermalOff:  *thermalOff,
			FaultPlan:   plan,
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(stderr, "odrl:", err)
			return 2
		}
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(stderr, "odrl:", err)
			return 2
		}
		stdout.Write(canon)
		return 0
	}
	if *writeConfig {
		if err := config.DefaultExperiment().Save(stdout); err != nil {
			fmt.Fprintln(stderr, "odrl:", err)
			return 1
		}
		return 0
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl:", err)
		return 2
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "odrl:", err)
		return 1
	}
	defer ocli.Close()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(stderr, "odrl:", err)
		return 1
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lrncli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl:", err)
		return 2
	}
	defer lrncli.Close(os.Stderr)
	if lrncli != nil {
		sim.DefaultLearn = lrncli.Layer
	}
	// The run ledger wraps the flight recorder around the tracer chain:
	// monitor -> flight -> tracer, with phase spans teed into the
	// recorder's post-mortem ring. Observe runs built anywhere below (flag
	// path and -config path alike).
	lcli := ledger.StartCLI("odrl", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	prevObs, prevSpan := sim.DefaultObserver, sim.DefaultSpanSink
	sim.DefaultObserver = lcli.WrapObserver(ocli.Observer())
	sim.DefaultSpanSink = lcli.SpanSink()
	defer func() { sim.DefaultObserver, sim.DefaultSpanSink = prevObs, prevSpan }()

	runErr := runMain(fs, stdout, stderr, ocli, mainFlags{
		controllers: *controllers, cores: *cores, workload: *workloadF,
		budget: *budget, warmup: *warmup, measure: *measure, seed: *seed,
		noise: *noise, thermalOff: *thermalOff, csvOut: *csvOut,
		traceFile: *traceFile, configFile: *configFile, plotTrace: *plotTrace,
		faultSpec: *faultSpec,
	})
	lcli.Finish(runErr)
	if runErr != nil {
		fmt.Fprintln(stderr, "odrl:", runErr)
		return 1
	}
	return 0
}

// mainFlags carries the simulation flags into the run body.
type mainFlags struct {
	controllers, workload, traceFile, configFile, faultSpec string
	cores                                                   int
	budget, warmup, measure, noise                          float64
	seed                                                    uint64
	thermalOff, csvOut, plotTrace                           bool
}

func runMain(fs *flag.FlagSet, stdout, stderr io.Writer, ocli *obs.CLI, f mainFlags) error {
	if f.configFile != "" {
		cf, err := os.Open(f.configFile)
		if err != nil {
			return err
		}
		exp, err := config.Load(cf)
		cf.Close()
		if err != nil {
			return err
		}
		results, err := sim.RunExperiment(exp)
		if err != nil {
			return err
		}
		if err := sim.WriteSummaryTable(stdout, results); err != nil {
			return err
		}
		return sim.WritePhaseTable(stdout, results)
	}

	opts := sim.DefaultOptions()
	opts.Cores = f.cores
	opts.Workload = f.workload
	opts.BudgetW = f.budget
	opts.WarmupS = f.warmup
	opts.MeasureS = f.measure
	opts.Seed = f.seed
	opts.SensorNoise = f.noise
	opts.ThermalOff = f.thermalOff
	plan, err := fault.ParseSpec(f.faultSpec)
	if err != nil {
		return err
	}
	opts.FaultPlan = plan
	if f.traceFile != "" || f.plotTrace {
		opts.TracePoints = 500
	}

	names := strings.Split(f.controllers, ",")
	if f.controllers == "all" {
		names = sim.ControllerNames()
	}

	// logRunConfig makes a run reproducible from stderr alone.
	w, h, _ := sim.GridFor(opts.Cores)
	warmupE, measureE := opts.Epochs()
	obs.LogEvent(stderr, "run-config",
		"seed", opts.Seed,
		"cores", opts.Cores,
		"grid_w", w,
		"grid_h", h,
		"workload", opts.Workload,
		"budget_w", opts.BudgetW,
		"epoch_s", opts.EpochS,
		"warmup_epochs", warmupE,
		"measure_epochs", measureE,
	)
	results, err := sim.RunAll(opts, names)
	if err != nil {
		return err
	}

	if f.csvOut {
		if err := sim.WriteCSV(stdout, results); err != nil {
			return err
		}
	} else {
		if err := sim.WriteSummaryTable(stdout, results); err != nil {
			return err
		}
		if err := sim.WritePhaseTable(stdout, results); err != nil {
			return err
		}
		if err := ocli.WriteDecideQuantiles(stdout); err != nil {
			return err
		}
	}

	if f.plotTrace {
		for _, res := range results {
			if len(res.Trace) == 0 {
				continue
			}
			xs := make([]float64, len(res.Trace))
			ys := make([]float64, len(res.Trace))
			bs := make([]float64, len(res.Trace))
			for i, p := range res.Trace {
				xs[i] = p.TimeS
				ys[i] = p.PowerW
				bs[i] = p.BudgetW
			}
			fmt.Fprintln(stdout)
			err := plot.Render(stdout,
				fmt.Sprintf("%s: chip power (W) vs time (s)", res.Summary.Controller),
				72, 14,
				plot.Series{Label: "power", X: xs, Y: ys},
				plot.Series{Label: "budget", X: xs, Y: bs},
			)
			if err != nil {
				return err
			}
		}
	}

	if f.traceFile != "" && len(results) > 0 {
		tf, err := os.Create(f.traceFile)
		if err != nil {
			return err
		}
		defer tf.Close()
		if err := sim.WriteTrace(tf, results[0].Summary.Controller, results[0].Trace); err != nil {
			return err
		}
	}
	return nil
}
