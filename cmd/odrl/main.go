// Command odrl runs one power-capped many-core simulation and prints the
// measured summary for one or more controllers.
//
// Usage:
//
//	odrl -controllers od-rl,maxbips,pid -cores 64 -budget 90 -measure 8
//
// Pass -controllers all for every registered controller. Add -csv to emit
// machine-readable output and -trace FILE to dump the power trace of the
// first controller.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		controllers = flag.String("controllers", "od-rl,maxbips,steepest-drop,pid,greedy,static", "comma-separated controller names, or 'all'")
		cores       = flag.Int("cores", 64, "number of cores")
		workloadF   = flag.String("workload", "mix", "workload preset name or 'mix'")
		budget      = flag.Float64("budget", 90, "chip power budget (W)")
		warmup      = flag.Float64("warmup", 2, "warmup seconds (learning continues, metrics off)")
		measure     = flag.Float64("measure", 8, "measurement seconds")
		seed        = flag.Uint64("seed", 1, "random seed")
		noise       = flag.Float64("noise", 0.02, "relative sensor noise")
		thermalOff  = flag.Bool("thermal-off", false, "disable the leakage-temperature loop")
		csvOut      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		traceFile   = flag.String("trace", "", "write the first controller's power trace CSV to this file")
		configFile  = flag.String("config", "", "run a config.Experiment JSON file instead of flags")
		writeConfig = flag.Bool("write-config", false, "print the default experiment JSON and exit")
		writeSpec   = flag.Bool("write-spec", false, "print the canonical scenario spec equivalent to this invocation (runnable with odrl-run) and exit")
		plotTrace   = flag.Bool("plot", false, "render each controller's power trace as an ASCII chart")
		faultSpec   = flag.String("fault-plan", "", "inject faults: an intensity in [0,1] for the canonical plan, or a plan JSON file path (see internal/fault)")
		traceEvents = flag.String("trace-events", "", "write structured JSONL epoch events to this file ('-' for stdout)")
		traceEvery  = flag.Int("trace-every", 1, "sample every Nth epoch in -trace-events output")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address (e.g. localhost:6060)")
		monitorOn   = flag.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = flag.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = flag.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = flag.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = flag.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = flag.String("artifacts", "", "record the run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
	)
	flag.Parse()

	// -write-spec translates the flag invocation into the declarative
	// scenario contract and exits before any observability side effects.
	if *writeSpec {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(2)
		}
		names := strings.Split(*controllers, ",")
		if *controllers == "all" {
			names = sim.ControllerNames()
		}
		spec := scenario.Spec{
			Workload:    *workloadF,
			Controllers: names,
			Cores:       *cores,
			BudgetW:     *budget,
			WarmupS:     *warmup,
			MeasureS:    *measure,
			Seeds:       []uint64{*seed},
			SensorNoise: noise,
			ThermalOff:  *thermalOff,
			FaultPlan:   plan,
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(2)
		}
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(2)
		}
		os.Stdout.Write(canon)
		return
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(2)
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(1)
	}
	defer ocli.Close()
	// Observe runs built anywhere below (flag path and -config path alike).
	sim.DefaultObserver = ocli.Observer()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(1)
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lcli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(2)
	}
	defer lcli.Close(os.Stderr)
	if lcli != nil {
		sim.DefaultLearn = lcli.Layer
	}

	// logRunConfig makes a run reproducible from stderr alone.
	logRunConfig := func(opts sim.Options) {
		w, h, _ := sim.GridFor(opts.Cores)
		warmupE, measureE := opts.Epochs()
		obs.LogEvent(os.Stderr, "run-config",
			"seed", opts.Seed,
			"cores", opts.Cores,
			"grid_w", w,
			"grid_h", h,
			"workload", opts.Workload,
			"budget_w", opts.BudgetW,
			"epoch_s", opts.EpochS,
			"warmup_epochs", warmupE,
			"measure_epochs", measureE,
		)
	}

	if *writeConfig {
		if err := config.DefaultExperiment().Save(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		return
	}
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		exp, err := config.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		results, err := sim.RunExperiment(exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		if err := sim.WriteSummaryTable(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		if err := sim.WritePhaseTable(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		return
	}

	opts := sim.DefaultOptions()
	opts.Cores = *cores
	opts.Workload = *workloadF
	opts.BudgetW = *budget
	opts.WarmupS = *warmup
	opts.MeasureS = *measure
	opts.Seed = *seed
	opts.SensorNoise = *noise
	opts.ThermalOff = *thermalOff
	plan, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(1)
	}
	opts.FaultPlan = plan
	if *traceFile != "" || *plotTrace {
		opts.TracePoints = 500
	}

	names := strings.Split(*controllers, ",")
	if *controllers == "all" {
		names = sim.ControllerNames()
	}

	logRunConfig(opts)
	results, err := sim.RunAll(opts, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(1)
	}

	if *csvOut {
		err = sim.WriteCSV(os.Stdout, results)
	} else {
		err = sim.WriteSummaryTable(os.Stdout, results)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl:", err)
		os.Exit(1)
	}
	if !*csvOut {
		if err := sim.WritePhaseTable(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		if err := ocli.WriteDecideQuantiles(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
	}

	if *plotTrace {
		for _, res := range results {
			if len(res.Trace) == 0 {
				continue
			}
			xs := make([]float64, len(res.Trace))
			ys := make([]float64, len(res.Trace))
			bs := make([]float64, len(res.Trace))
			for i, p := range res.Trace {
				xs[i] = p.TimeS
				ys[i] = p.PowerW
				bs[i] = p.BudgetW
			}
			fmt.Println()
			err := plot.Render(os.Stdout,
				fmt.Sprintf("%s: chip power (W) vs time (s)", res.Summary.Controller),
				72, 14,
				plot.Series{Label: "power", X: xs, Y: ys},
				plot.Series{Label: "budget", X: xs, Y: bs},
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, "odrl:", err)
				os.Exit(1)
			}
		}
	}

	if *traceFile != "" && len(results) > 0 {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sim.WriteTrace(f, results[0].Summary.Controller, results[0].Trace); err != nil {
			fmt.Fprintln(os.Stderr, "odrl:", err)
			os.Exit(1)
		}
	}
}
