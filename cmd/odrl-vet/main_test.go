package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunRejectsMalformedInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"unknown analyzer", []string{"-analyzers", "nosuch", "./..."}, "unknown analyzer(s): nosuch"},
		{"one of several unknown", []string{"-analyzers", "detrange,nosuch,wallclock"}, "unknown analyzer(s): nosuch"},
		{"negative max", []string{"-max", "-1"}, "-max must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

// miniModule writes a throwaway module named repro (so deterministic-path
// gating engages) containing one violating package and one suppressed one.
func miniModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`)
	write("internal/sim/ok.go", `package sim

import "time"

func Probe() time.Time {
	return time.Now() //odrl:allow wallclock test fixture probe
}
`)
	return dir
}

func TestRunFlagsViolationsAndExitsOne(t *testing.T) {
	dir := miniModule(t)
	code, stdout, stderr := runCLI(t, "-dir", dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[detrange]") || !strings.Contains(stdout, "range over map") {
		t.Fatalf("missing detrange diagnostic:\n%s", stdout)
	}
	if strings.Contains(stdout, "[wallclock]") {
		t.Fatalf("suppressed wallclock diagnostic leaked:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 unsuppressed diagnostic(s)") {
		t.Fatalf("stderr missing summary:\n%s", stderr)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := miniModule(t)
	code, stdout, _ := runCLI(t, "-dir", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 1 || diags[0].Analyzer != "detrange" || diags[0].Line == 0 {
		t.Fatalf("unexpected JSON diagnostics: %+v", diags)
	}
}

func TestRunAnalyzerSubset(t *testing.T) {
	// Only wallclock selected: the detrange violation is out of scope and
	// the suppressed probe stays suppressed, so the tree is clean.
	dir := miniModule(t)
	code, stdout, stderr := runCLI(t, "-dir", dir, "-analyzers", "wallclock", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestRunAllowsLedger(t *testing.T) {
	dir := miniModule(t)
	code, stdout, stderr := runCLI(t, "-dir", dir, "-allows", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "[wallclock] test fixture probe") || !strings.Contains(stdout, "1 suppression(s)") {
		t.Fatalf("-allows ledger unexpected:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t, "-dir", dir, "-allows", "-json", "./...")
	if code != 0 {
		t.Fatalf("-allows -json exit code = %d", code)
	}
	var allows []analysis.Allow
	if err := json.Unmarshal([]byte(stdout), &allows); err != nil {
		t.Fatalf("-allows -json not valid JSON: %v\n%s", err, stdout)
	}
	if len(allows) != 1 || allows[0].Analyzer != "wallclock" || allows[0].Reason != "test fixture probe" {
		t.Fatalf("unexpected JSON allows: %+v", allows)
	}
}

func TestRunMaxTruncatesOutputNotExitCode(t *testing.T) {
	dir := miniModule(t)
	// Add a second violation so -max 1 has something to truncate.
	bad2 := filepath.Join(dir, "internal", "core", "bad2.go")
	if err := os.WriteFile(bad2, []byte(`package core

import "time"

func Stamp() time.Time { return time.Now() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-dir", dir, "-max", "1", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout, "... and 1 more") {
		t.Fatalf("-max did not truncate:\n%s", stdout)
	}
	if !strings.Contains(stderr, "2 unsuppressed diagnostic(s)") {
		t.Fatalf("summary should count all diagnostics:\n%s", stderr)
	}
}
