// Command odrl-vet runs the repo's custom invariant analyzers — the
// determinism, RNG, wall-clock, hot-path-allocation, and kernel-parity
// contracts that plain go vet cannot see — over the module and exits
// non-zero when any unsuppressed diagnostic remains.
//
// Usage:
//
//	odrl-vet ./...
//	odrl-vet -analyzers detrange,wallclock ./internal/...
//	odrl-vet -json ./... | jq .
//	odrl-vet -allows ./...            # audit the //odrl:allow ledger
//	odrl-vet -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs/ledger"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: parse+validate flags, then
// load, analyze, report. Exit code 2 means the invocation was malformed
// (unknown analyzer, bad flags), 1 means unsuppressed diagnostics (or a
// load failure), 0 means the tree is clean.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sel       = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		asJSON    = fs.Bool("json", false, "emit diagnostics and allows as JSON")
		allows    = fs.Bool("allows", false, "list //odrl:allow suppressions (the audit ledger) instead of diagnostics")
		list      = fs.Bool("list", false, "list available analyzers and exit")
		dir       = fs.String("dir", ".", "module directory to analyze (go list runs here)")
		maxDiags  = fs.Int("max", 0, "print at most this many diagnostics (0 = no limit; exit code still reflects the full count)")
		ledgerDir = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record")
		noLedger  = fs.Bool("no-ledger", false, "disable the run ledger")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *sel != "" {
		names := strings.Split(*sel, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		var unknown []string
		analyzers, unknown = analysis.ByName(names)
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "odrl-vet: unknown analyzer(s): %s (run odrl-vet -list)\n", strings.Join(unknown, ", "))
			return 2
		}
	}
	if *maxDiags < 0 {
		fmt.Fprintln(stderr, "odrl-vet: -max must be >= 0")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// A vet pass is a run worth remembering: the record's status tells CI
	// archaeology whether this tree was clean at this commit.
	lcli := ledger.StartCLI("odrl-vet", args, ledger.ResolveDir(*ledgerDir), *noLedger)

	loader := analysis.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		lcli.Finish(fmt.Errorf("load: %v", err))
		fmt.Fprintf(stderr, "odrl-vet: load: %v\n", err)
		return 1
	}
	result, err := analysis.Vet(pkgs, analyzers)
	if err != nil {
		lcli.Finish(err)
		fmt.Fprintf(stderr, "odrl-vet: %v\n", err)
		return 1
	}

	var code int
	if *allows {
		code = reportAllows(result, *asJSON, stdout, stderr)
	} else {
		code = reportDiags(result, *asJSON, *maxDiags, stdout, stderr)
	}
	if code != 0 {
		lcli.Finish(fmt.Errorf("%d unsuppressed diagnostic(s)", len(result.Diagnostics)))
	} else {
		lcli.Finish(nil)
	}
	return code
}

func reportDiags(result analysis.Result, asJSON bool, maxDiags int, stdout, stderr io.Writer) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		diags := result.Diagnostics
		if diags == nil {
			diags = []analysis.Diagnostic{} // [] not null: consumers iterate
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "odrl-vet: encode: %v\n", err)
			return 1
		}
	} else {
		shown := result.Diagnostics
		if maxDiags > 0 && len(shown) > maxDiags {
			shown = shown[:maxDiags]
		}
		for _, d := range shown {
			fmt.Fprintln(stdout, d.String())
		}
		if n := len(result.Diagnostics) - len(shown); n > 0 {
			fmt.Fprintf(stdout, "... and %d more (re-run without -max)\n", n)
		}
	}
	if len(result.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "odrl-vet: %d unsuppressed diagnostic(s)\n", len(result.Diagnostics))
		return 1
	}
	return 0
}

func reportAllows(result analysis.Result, asJSON bool, stdout, stderr io.Writer) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		allows := result.Allows
		if allows == nil {
			allows = []analysis.Allow{}
		}
		if err := enc.Encode(allows); err != nil {
			fmt.Fprintf(stderr, "odrl-vet: encode: %v\n", err)
			return 1
		}
		return 0
	}
	for _, a := range result.Allows {
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", a.File, a.Line, a.Analyzer, a.Reason)
	}
	fmt.Fprintf(stdout, "%d suppression(s)\n", len(result.Allows))
	return 0
}
