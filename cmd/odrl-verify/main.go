// Command odrl-verify re-measures the paper's four abstract claims and
// prints a PASS/FAIL verdict for each. It exits non-zero if any claim's
// shape fails to reproduce, making it suitable as a CI reproduction gate.
//
//	odrl-verify          # full fidelity, ~1 minute
//	odrl-verify -quick   # small/short smoke pass with relaxed thresholds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
	"repro/internal/obs/monitor"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed, 1 means a claim failed or a run errored.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick       = fs.Bool("quick", false, "small/short runs with relaxed thresholds")
		seed        = fs.Uint64("seed", 0, "override random seed")
		traceEvents = fs.String("trace-events", "", "write structured JSONL epoch events for every run to this file")
		traceEvery  = fs.Int("trace-every", 100, "sample every Nth epoch in -trace-events output")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address")
		monitorOn   = fs.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = fs.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = fs.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = fs.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = fs.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = fs.String("artifacts", "", "record every run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
		ledgerDir   = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger    = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-verify:", err)
		return 2
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-verify:", err)
		return 1
	}
	defer ocli.Close()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-verify:", err)
		return 1
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lrncli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-verify:", err)
		return 2
	}
	defer lrncli.Close(os.Stderr)
	if lrncli != nil {
		sim.DefaultLearn = lrncli.Layer
	}
	lcli := ledger.StartCLI("odrl-verify", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	prevObs, prevSpan := sim.DefaultObserver, sim.DefaultSpanSink
	sim.DefaultObserver = lcli.WrapObserver(ocli.Observer())
	sim.DefaultSpanSink = lcli.SpanSink()
	defer func() { sim.DefaultObserver, sim.DefaultSpanSink = prevObs, prevSpan }()

	cfg := experiments.Default()
	cfg.Quick = *quick
	if *seed > 0 {
		cfg.Seed = *seed
	}

	results, err := experiments.VerifyClaims(cfg)
	if err != nil {
		lcli.Finish(err)
		fmt.Fprintln(stderr, "odrl-verify:", err)
		return 1
	}

	failed := 0
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "[%s] %s — %s\n      measured: %s\n", verdict, r.ID, r.Claim, r.Measured)
	}
	if failed > 0 {
		// A failed claim is a failed run record: the flight recorder dumps
		// its post-mortem bundle so the regression is diagnosable after the
		// fact.
		lcli.Finish(fmt.Errorf("%d of %d claims failed to reproduce", failed, len(results)))
		fmt.Fprintf(stdout, "\n%d of %d claims failed to reproduce\n", failed, len(results))
		return 1
	}
	lcli.Finish(nil)
	fmt.Fprintf(stdout, "\nall %d claims reproduced\n", len(results))
	return 0
}
