// Command odrl-verify re-measures the paper's four abstract claims and
// prints a PASS/FAIL verdict for each. It exits non-zero if any claim's
// shape fails to reproduce, making it suitable as a CI reproduction gate.
//
//	odrl-verify          # full fidelity, ~1 minute
//	odrl-verify -quick   # small/short smoke pass with relaxed thresholds
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "small/short runs with relaxed thresholds")
	seed := flag.Uint64("seed", 0, "override random seed")
	traceEvents := flag.String("trace-events", "", "write structured JSONL epoch events for every run to this file")
	traceEvery := flag.Int("trace-every", 100, "sample every Nth epoch in -trace-events output")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address")
	monitorOn := flag.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
	alertRules := flag.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
	perfetto := flag.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
	learnOn := flag.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
	snapEvery := flag.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
	artifacts := flag.String("artifacts", "", "record every run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
	flag.Parse()

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-verify:", err)
		os.Exit(2)
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-verify:", err)
		os.Exit(1)
	}
	defer ocli.Close()
	sim.DefaultObserver = ocli.Observer()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-verify:", err)
		os.Exit(1)
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lcli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-verify:", err)
		os.Exit(2)
	}
	defer lcli.Close(os.Stderr)
	if lcli != nil {
		sim.DefaultLearn = lcli.Layer
	}

	cfg := experiments.Default()
	cfg.Quick = *quick
	if *seed > 0 {
		cfg.Seed = *seed
	}

	results, err := experiments.VerifyClaims(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-verify:", err)
		os.Exit(1)
	}

	failed := 0
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %s — %s\n      measured: %s\n", verdict, r.ID, r.Claim, r.Measured)
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d claims failed to reproduce\n", failed, len(results))
		os.Exit(1)
	}
	fmt.Printf("\nall %d claims reproduced\n", len(results))
}
