package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunRejectsMalformedInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no mode", nil, "Usage"},
		{"record and list", []string{"-record", "-list"}, "mutually exclusive"},
		{"record and inspect", []string{"-record", "-inspect", "x.json"}, "mutually exclusive"},
		{"all three", []string{"-record", "-list", "-inspect", "x.json"}, "mutually exclusive"},
		{"zero dur", []string{"-record", "-dur", "0"}, "-dur must be positive"},
		{"negative dur", []string{"-record", "-dur", "-1"}, "-dur must be positive"},
		{"NaN dur", []string{"-record", "-dur", "NaN"}, "-dur must be positive"},
		{"output without record", []string{"-list", "-o", "x.json"}, "-o only applies"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	for _, name := range workload.PresetNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing preset %q", name)
		}
	}
}

func TestRunRecordThenInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := runCLI(t, "-record", "-benchmark", "vips", "-dur", "0.5", "-o", path)
	if code != 0 {
		t.Fatalf("-record exit code = %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "recorded") {
		t.Fatalf("-record did not report entry count:\n%s", stderr)
	}

	code, stdout, stderr := runCLI(t, "-inspect", path)
	if code != 0 {
		t.Fatalf("-inspect exit code = %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, `trace "vips"`) || !strings.Contains(stdout, "phase 0") {
		t.Fatalf("-inspect output unexpected:\n%s", stdout)
	}
}

func TestRunRecordToStdoutIsValidTrace(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-record", "-benchmark", "x264", "-dur", "0.5", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	tr, err := workload.ReadJSON(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("recorded trace does not parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
}

func TestRunFailuresExitOne(t *testing.T) {
	if code, _, _ := runCLI(t, "-record", "-benchmark", "no-such-benchmark"); code != 1 {
		t.Errorf("unknown benchmark: exit code = %d, want 1", code)
	}
	if code, _, _ := runCLI(t, "-inspect", filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Errorf("missing trace file: exit code = %d, want 1", code)
	}
}
