// Command odrl-trace records and inspects workload phase traces, so the
// same workload realisation can be replayed across controller comparisons
// or shared between machines.
//
// Usage:
//
//	odrl-trace -record -benchmark canneal -dur 5 -o canneal.trace.json
//	odrl-trace -inspect canneal.trace.json
//	odrl-trace -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		record    = flag.Bool("record", false, "record a new trace")
		inspect   = flag.String("inspect", "", "inspect an existing trace file")
		list      = flag.Bool("list", false, "list available benchmark presets")
		benchmark = flag.String("benchmark", "canneal", "benchmark preset to record")
		dur       = flag.Float64("dur", 5, "trace duration in seconds")
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/obs and /debug/pprof on this address")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "odrl-trace:", err)
		os.Exit(1)
	}

	ocli, err := obs.StartCLI("", 1, *debugAddr)
	if err != nil {
		fail(err)
	}
	defer ocli.Close()

	switch {
	case *list:
		mid := 2.5e9
		fmt.Println("benchmark      CPI@2.5GHz  mem-bound  phase-changes/s")
		for _, name := range workload.PresetNames() {
			c, err := workload.Characterize(workload.MustPreset(name), *seed, 2.0, mid)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-14s %-11.3f %-10.3f %.1f\n", name, c.MeanCPI, c.MemBoundedness, c.PhaseRatePerS)
		}

	case *record:
		obs.LogEvent(os.Stderr, "record-config",
			"benchmark", *benchmark, "seed", *seed, "dur_s", *dur)
		spec, err := workload.Preset(*benchmark)
		if err != nil {
			fail(err)
		}
		tr, err := workload.Record(spec, *seed, *dur)
		if err != nil {
			fail(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.WriteJSON(w); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d entries over %.2f s\n", len(tr.Entries), tr.TotalDurS())

	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := workload.ReadJSON(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace %q: %d phases, %d entries, %.2f s total\n",
			tr.Name, len(tr.Phases), len(tr.Entries), tr.TotalDurS())
		residency := make([]float64, len(tr.Phases))
		for _, e := range tr.Entries {
			residency[e.PhaseIdx] += e.DurS
		}
		for i, ph := range tr.Phases {
			fmt.Printf("  phase %d (%s): CPI %.2f, MPKI %.1f, activity %.2f — %.1f%% of time\n",
				i, ph.Class, ph.BaseCPI, ph.MPKI, ph.Activity, 100*residency[i]/tr.TotalDurS())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
