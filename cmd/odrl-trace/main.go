// Command odrl-trace records and inspects workload phase traces, so the
// same workload realisation can be replayed across controller comparisons
// or shared between machines.
//
// Usage:
//
//	odrl-trace -record -benchmark canneal -dur 5 -o canneal.trace.json
//	odrl-trace -inspect canneal.trace.json
//	odrl-trace -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
	"repro/internal/obs/monitor"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: parse+validate flags, then
// dispatch. Exit code 2 means the invocation was malformed, 1 means the
// work itself failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record    = fs.Bool("record", false, "record a new trace")
		inspect   = fs.String("inspect", "", "inspect an existing trace file")
		list      = fs.Bool("list", false, "list available benchmark presets")
		benchmark = fs.String("benchmark", "canneal", "benchmark preset to record")
		dur       = fs.Float64("dur", 5, "trace duration in seconds")
		seed      = fs.Uint64("seed", 1, "random seed")
		out       = fs.String("o", "", "output file (default stdout)")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address")
		monitorOn = fs.Bool("monitor", false, "enable the run-health monitor (only meaningful with a mode that runs simulation epochs)")
		alertRule = fs.String("alert-rules", "", "alert rules JSON file (implies -monitor)")
		perfetto  = fs.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn   = fs.Bool("learn", false, "enable learning introspection (only meaningful with a mode that runs simulation epochs)")
		snapEvery = fs.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (requires -artifacts)")
		artifacts = fs.String("artifacts", "", "record simulation runs into this directory: full JSONL trace plus policy snapshots (implies -learn)")
		ledgerDir = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger  = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Exactly one mode; -record/-inspect/-list silently shadowing each
	// other would make "which trace did I just ship?" unanswerable.
	modes := 0
	for _, on := range []bool{*record, *inspect != "", *list} {
		if on {
			modes++
		}
	}
	if modes == 0 {
		fs.Usage()
		return 2
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "odrl-trace: -record, -inspect and -list are mutually exclusive")
		return 2
	}
	if *record && !(*dur > 0) { // negated to also catch NaN
		fmt.Fprintf(stderr, "odrl-trace: -dur must be positive, got %v\n", *dur)
		return 2
	}
	if !*record && *out != "" {
		fmt.Fprintln(stderr, "odrl-trace: -o only applies to -record")
		return 2
	}

	tracePath, traceStride, err := learn.ResolveTrace("", 1, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-trace:", err)
		return 2
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-trace:", err)
		return 1
	}
	defer ocli.Close()
	// Trace recording itself runs no simulation epochs, but the monitor and
	// learn flags are accepted everywhere for a uniform CLI surface: rules
	// files are validated, the debug server gains /metrics, /debug/live,
	// /debug/timeline and /debug/learn, and any future sim-running mode picks
	// both layers up through sim.DefaultMonitor / sim.DefaultLearn.
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRule, *perfetto)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-trace:", err)
		return 1
	}
	defer mcli.Close(stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lcli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-trace:", err)
		return 2
	}
	defer lcli.Close(stderr)
	if lcli != nil {
		sim.DefaultLearn = lcli.Layer
	}
	// The ledger records trace work like any other run (tool, args, wall
	// time); the flight recorder arms through the default observer for any
	// future sim-running mode.
	ledcli := ledger.StartCLI("odrl-trace", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	prevObs, prevSpan := sim.DefaultObserver, sim.DefaultSpanSink
	sim.DefaultObserver = ledcli.WrapObserver(ocli.Observer())
	sim.DefaultSpanSink = ledcli.SpanSink()
	defer func() { sim.DefaultObserver, sim.DefaultSpanSink = prevObs, prevSpan }()

	runErr := func() error {
		switch {
		case *list:
			mid := 2.5e9
			fmt.Fprintln(stdout, "benchmark      CPI@2.5GHz  mem-bound  phase-changes/s")
			for _, name := range workload.PresetNames() {
				c, err := workload.Characterize(workload.MustPreset(name), *seed, 2.0, mid)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "%-14s %-11.3f %-10.3f %.1f\n", name, c.MeanCPI, c.MemBoundedness, c.PhaseRatePerS)
			}

		case *record:
			obs.LogEvent(stderr, "record-config",
				"benchmark", *benchmark, "seed", *seed, "dur_s", *dur)
			spec, err := workload.Preset(*benchmark)
			if err != nil {
				return err
			}
			tr, err := workload.Record(spec, *seed, *dur)
			if err != nil {
				return err
			}
			w := stdout
			if *out != "" {
				f, err := os.Create(*out)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := tr.WriteJSON(w); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "recorded %d entries over %.2f s\n", len(tr.Entries), tr.TotalDurS())

		case *inspect != "":
			f, err := os.Open(*inspect)
			if err != nil {
				return err
			}
			defer f.Close()
			tr, err := workload.ReadJSON(f)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace %q: %d phases, %d entries, %.2f s total\n",
				tr.Name, len(tr.Phases), len(tr.Entries), tr.TotalDurS())
			residency := make([]float64, len(tr.Phases))
			for _, e := range tr.Entries {
				residency[e.PhaseIdx] += e.DurS
			}
			for i, ph := range tr.Phases {
				fmt.Fprintf(stdout, "  phase %d (%s): CPI %.2f, MPKI %.1f, activity %.2f — %.1f%% of time\n",
					i, ph.Class, ph.BaseCPI, ph.MPKI, ph.Activity, 100*residency[i]/tr.TotalDurS())
			}
		}
		return nil
	}()
	ledcli.Finish(runErr)
	if runErr != nil {
		fmt.Fprintln(stderr, "odrl-trace:", runErr)
		return 1
	}
	return 0
}
