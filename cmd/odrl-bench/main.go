// Command odrl-bench regenerates the paper's evaluation: every table and
// figure listed in DESIGN.md's experiment index.
//
// Usage:
//
//	odrl-bench                 # run everything at full fidelity
//	odrl-bench -experiment F2  # one experiment
//	odrl-bench -quick          # small/short runs for smoke checks
//
// Output is aligned text tables on stdout, one block per experiment, in the
// format EXPERIMENTS.md records.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
	"repro/internal/obs/monitor"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchFlags carries every flag into the dispatch body.
type benchFlags struct {
	experiment, cacheDir, faultSpec                        string
	benchPar, benchMon, benchLearn, benchStep, benchFlight string
	outDir, reportFile, traceEvents, debugAddr             string
	alertRules, perfetto, artifacts                        string
	quick, monitorOn, learnOn                              bool
	cores, workers, traceEvery, snapEvery                  int
	budget                                                 float64
	seed                                                   uint64
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed, 1 means a bench or experiment failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment  = fs.String("experiment", "all", "experiment ID (T1, T2, F1..F10) or 'all'")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory shared with odrl-run ('' = no cache); only table runs are cached, never bench or report modes")
		quick       = fs.Bool("quick", false, "shrink runs for a fast smoke pass")
		cores       = fs.Int("cores", 0, "override platform core count")
		budget      = fs.Float64("budget", 0, "override chip budget (W)")
		seed        = fs.Uint64("seed", 0, "override random seed")
		workers     = fs.Int("j", 0, "worker goroutines for run fan-out and chip sharding (0 = one per CPU, 1 = sequential); results are identical for any value")
		faultSpec   = fs.String("fault-plan", "", "inject faults into every run: an intensity in [0,1] for the canonical plan, or a plan JSON file path (F18 sweeps its own plans)")
		benchPar    = fs.String("bench-par", "", "measure sequential-vs-parallel wall clock and write a JSON report (e.g. BENCH_par.json) to this file, then exit")
		benchMon    = fs.String("bench-monitor", "", "measure monitoring-off-vs-on wall clock and write a JSON report (e.g. BENCH_monitor.json) to this file, then exit")
		benchLearn  = fs.String("bench-learn", "", "measure learning-introspection-off-vs-on wall clock and write a JSON report (e.g. BENCH_learn.json) to this file, then exit")
		benchStep   = fs.String("bench-step", "", "measure single-thread epoch-kernel throughput (struct-of-arrays vs reference) and write a JSON report (e.g. BENCH_step.json) to this file, then exit non-zero if the speedup gate fails")
		benchFlight = fs.String("bench-flight", "", "measure flight-recorder-off-vs-on wall clock and write a JSON report (e.g. BENCH_flight.json) to this file, then exit")
		outDir      = fs.String("o", "", "also write one CSV per experiment into this directory")
		reportFile  = fs.String("report", "", "write a complete markdown report (claim verdicts + all tables) to this file and exit")
		traceEvents = fs.String("trace-events", "", "write structured JSONL epoch events for every run to this file")
		traceEvery  = fs.Int("trace-every", 100, "sample every Nth epoch in -trace-events output")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address for live profiling")
		monitorOn   = fs.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = fs.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = fs.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = fs.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = fs.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = fs.String("artifacts", "", "record every run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this file on clean exit (go tool pprof format)")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file on clean exit, after a final GC")
		ledgerDir   = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger    = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "odrl-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "odrl-bench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "odrl-bench:", err)
				return
			}
			runtime.GC() // settle to live objects so the profile shows retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "odrl-bench:", err)
			}
			f.Close()
		}()
	}

	// Every execution mode — bench, report and tables — records a run; the
	// bench modes additionally fold their BENCH_*.json into the record so
	// odrl-obs can trend overheads across commits.
	lcli := ledger.StartCLI("odrl-bench", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	code, runErr := benchMain(stdout, stderr, lcli, benchFlags{
		experiment: *experiment, cacheDir: *cacheDir, faultSpec: *faultSpec,
		benchPar: *benchPar, benchMon: *benchMon, benchLearn: *benchLearn,
		benchStep: *benchStep, benchFlight: *benchFlight,
		outDir: *outDir, reportFile: *reportFile, traceEvents: *traceEvents,
		debugAddr: *debugAddr, alertRules: *alertRules, perfetto: *perfetto,
		artifacts: *artifacts, quick: *quick, monitorOn: *monitorOn,
		learnOn: *learnOn, cores: *cores, workers: *workers,
		traceEvery: *traceEvery, snapEvery: *snapEvery, budget: *budget,
		seed: *seed,
	})
	lcli.Finish(runErr)
	if runErr != nil {
		fmt.Fprintln(stderr, "odrl-bench:", runErr)
	}
	return code
}

// benchReport is the common shape of every bench mode's output.
type benchReport interface {
	WriteJSON(io.Writer) error
}

// emitBench renders a bench report once, records it in the run ledger (as
// both an artifact and per-case bench points), and writes the JSON file.
func emitBench(lcli *ledger.CLI, path, kind string, rep benchReport, points []ledger.BenchPoint) error {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	for _, p := range points {
		lcli.AddBenchPoint(kind, p.Case, p.Metric, p.Value)
	}
	lcli.AddArtifact(filepath.Base(path), buf.Bytes())
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// benchMain dispatches one invocation. The int is the process exit code;
// a non-nil error is both printed and recorded in the run ledger.
func benchMain(stdout, stderr io.Writer, lcli *ledger.CLI, f benchFlags) (int, error) {
	if f.benchPar != "" {
		rep, err := experiments.BenchPar(f.workers)
		if err != nil {
			return 1, err
		}
		var pts []ledger.BenchPoint
		for _, c := range rep.Cases {
			pts = append(pts, ledger.BenchPoint{Case: c.Name, Metric: "speedup", Value: c.Speedup})
		}
		if err := emitBench(lcli, f.benchPar, "par", rep, pts); err != nil {
			return 1, err
		}
		for _, c := range rep.Cases {
			fmt.Fprintf(stdout, "%-32s workers=%d  seq %.2fs  par %.2fs  speedup %.2fx\n",
				c.Name, c.Workers, c.SequentialS, c.ParallelS, c.Speedup)
		}
		fmt.Fprintf(stdout, "report written to %s (%d CPUs)\n", f.benchPar, rep.HostCPUs)
		return 0, nil
	}

	if f.benchStep != "" {
		rep, err := experiments.BenchStep(experiments.Config{Quick: f.quick})
		if err != nil {
			return 1, err
		}
		var pts []ledger.BenchPoint
		for _, c := range rep.Cases {
			pts = append(pts, ledger.BenchPoint{Case: c.Name, Metric: "speedup", Value: c.Speedup})
		}
		if err := emitBench(lcli, f.benchStep, "step", rep, pts); err != nil {
			return 1, err
		}
		for _, c := range rep.Cases {
			fmt.Fprintf(stdout, "%-24s cores=%-5d soa %10.0f ep/s  ref %9.0f ep/s  speedup %.2fx\n",
				c.Name, c.Cores, c.EpochsPerSec, c.ReferenceEpochsPerSec, c.Speedup)
		}
		fmt.Fprintf(stdout, "report written to %s (%d CPUs)\n", f.benchStep, rep.HostCPUs)
		if !f.quick && !rep.Gate.Pass {
			return 1, fmt.Errorf("throughput gate FAILED: %s speedup %.2fx < %.1fx",
				rep.Gate.Case, rep.Gate.Speedup, rep.Gate.MinSpeedup)
		}
		return 0, nil
	}

	if f.benchMon != "" {
		rep, err := experiments.BenchMonitor()
		if err != nil {
			return 1, err
		}
		var pts []ledger.BenchPoint
		for _, c := range rep.Cases {
			pts = append(pts, ledger.BenchPoint{Case: c.Name, Metric: "overhead_frac", Value: c.OverheadFrac})
		}
		if err := emitBench(lcli, f.benchMon, "monitor", rep, pts); err != nil {
			return 1, err
		}
		for _, c := range rep.Cases {
			fmt.Fprintf(stdout, "%-32s epochs=%d  off %.2fs  on %.2fs  overhead %.2f%%\n",
				c.Name, c.Epochs, c.OffS, c.OnS, 100*c.OverheadFrac)
		}
		fmt.Fprintf(stdout, "report written to %s (%d CPUs)\n", f.benchMon, rep.HostCPUs)
		return 0, nil
	}

	if f.benchLearn != "" {
		rep, err := experiments.BenchLearn()
		if err != nil {
			return 1, err
		}
		var pts []ledger.BenchPoint
		for _, c := range rep.Cases {
			pts = append(pts, ledger.BenchPoint{Case: c.Name, Metric: "overhead_frac", Value: c.OverheadFrac})
		}
		if err := emitBench(lcli, f.benchLearn, "learn", rep, pts); err != nil {
			return 1, err
		}
		for _, c := range rep.Cases {
			fmt.Fprintf(stdout, "%-32s epochs=%d  off %.2fs  on %.2fs  overhead %.2f%%\n",
				c.Name, c.Epochs, c.OffS, c.OnS, 100*c.OverheadFrac)
		}
		fmt.Fprintf(stdout, "report written to %s (%d CPUs)\n", f.benchLearn, rep.HostCPUs)
		return 0, nil
	}

	if f.benchFlight != "" {
		rep, err := experiments.BenchFlight()
		if err != nil {
			return 1, err
		}
		var pts []ledger.BenchPoint
		for _, c := range rep.Cases {
			pts = append(pts, ledger.BenchPoint{Case: c.Name, Metric: "overhead_frac", Value: c.OverheadFrac})
		}
		if err := emitBench(lcli, f.benchFlight, "flight", rep, pts); err != nil {
			return 1, err
		}
		for _, c := range rep.Cases {
			fmt.Fprintf(stdout, "%-32s epochs=%d  off %.2fs  on %.2fs  overhead %.2f%%\n",
				c.Name, c.Epochs, c.OffS, c.OnS, 100*c.OverheadFrac)
		}
		fmt.Fprintf(stdout, "report written to %s (%d CPUs)\n", f.benchFlight, rep.HostCPUs)
		return 0, nil
	}

	tracePath, traceStride, err := learn.ResolveTrace(f.traceEvents, f.traceEvery, f.artifacts)
	if err != nil {
		return 2, err
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, f.debugAddr)
	if err != nil {
		return 1, err
	}
	defer ocli.Close()
	// Experiments assemble runs internally, so the tracer (and the ledger's
	// flight recorder around it) hooks in through the harness-level default
	// observer. Bench modes never reach this point: their off legs must stay
	// recorder-free or the comparison measures the recorder against itself.
	prevObs, prevSpan := sim.DefaultObserver, sim.DefaultSpanSink
	sim.DefaultObserver = lcli.WrapObserver(ocli.Observer())
	sim.DefaultSpanSink = lcli.SpanSink()
	defer func() { sim.DefaultObserver, sim.DefaultSpanSink = prevObs, prevSpan }()
	mcli, err := monitor.StartCLI(ocli, f.monitorOn, f.alertRules, f.perfetto)
	if err != nil {
		return 1, err
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lrncli, err := learn.StartCLI(ocli, f.learnOn, f.snapEvery, f.artifacts)
	if err != nil {
		return 2, err
	}
	defer lrncli.Close(os.Stderr)
	if lrncli != nil {
		sim.DefaultLearn = lrncli.Layer
	}

	if f.outDir != "" {
		if err := os.MkdirAll(f.outDir, 0o755); err != nil {
			return 1, err
		}
	}

	cfg := experiments.Default()
	cfg.Quick = f.quick
	cfg.Workers = f.workers
	plan, err := fault.ParseSpec(f.faultSpec)
	if err != nil {
		return 1, err
	}
	cfg.FaultPlan = plan
	if f.cores > 0 {
		cfg.Cores = f.cores
	}
	if f.budget > 0 {
		cfg.BudgetW = f.budget
	}
	if f.seed > 0 {
		cfg.Seed = f.seed
	}

	if f.reportFile != "" {
		rf, err := os.Create(f.reportFile)
		if err != nil {
			return 1, err
		}
		ropts := experiments.ReportOptions{Config: cfg}
		if f.experiment != "all" {
			ropts.IDs = []string{f.experiment}
		}
		ropts.Elapsed = func(id string, d time.Duration) {
			fmt.Fprintf(stdout, "(%s finished in %.1fs)\n", id, d.Seconds())
		}
		werr := experiments.WriteReport(rf, ropts)
		cerr := rf.Close()
		if werr != nil || cerr != nil {
			return 1, fmt.Errorf("report: %v %v", werr, cerr)
		}
		fmt.Fprintf(stdout, "report written to %s\n", f.reportFile)
		return 0, nil
	}

	// Table runs go through the scenario engine: each experiment's
	// checked-in spec, with the CLI flags folded in as spec overrides, so
	// odrl-bench and odrl-run share one execution path and one cache.
	engine := &scenario.Engine{}
	if f.cacheDir != "" {
		cache, err := scenario.NewCache(f.cacheDir)
		if err != nil {
			return 1, err
		}
		engine.Cache = cache
	}
	specFor := func(id string) (scenario.Spec, error) {
		spec, err := scenario.Builtin(id)
		if err != nil {
			return scenario.Spec{}, err
		}
		spec.Quick = f.quick
		spec.Workers = f.workers
		spec.FaultPlan = plan
		if f.cores > 0 {
			spec.Cores = f.cores
		}
		if f.budget > 0 {
			spec.BudgetW = f.budget
		}
		if f.seed > 0 {
			spec.Seeds = []uint64{f.seed}
		}
		return spec, nil
	}

	runOne := func(id string) error {
		start := time.Now()
		spec, err := specFor(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl, info, err := engine.Run(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		lcli.RecordScenario(spec.Experiment, info.Hash, scenario.EngineVersion, info.CacheHit)
		if info.CacheHit {
			fmt.Fprintf(stderr, "odrl-bench: %s: cache hit %s\n", id, info.Hash)
		}
		if _, err := tbl.WriteTo(stdout); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if f.outDir != "" {
			path := filepath.Join(f.outDir, strings.ToLower(id)+".csv")
			cf, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			werr := tbl.WriteCSV(cf)
			cerr := cf.Close()
			if werr != nil || cerr != nil {
				return fmt.Errorf("%s: write %s failed", id, path)
			}
		}
		fmt.Fprintf(stdout, "(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
		return nil
	}

	if f.experiment == "all" {
		for _, e := range experiments.All() {
			if err := runOne(e.ID); err != nil {
				return 1, err
			}
		}
		return 0, nil
	}
	if _, err := experiments.ByID(f.experiment); err != nil {
		return 1, err
	}
	if err := runOne(f.experiment); err != nil {
		return 1, err
	}
	return 0, nil
}
