// Command odrl-bench regenerates the paper's evaluation: every table and
// figure listed in DESIGN.md's experiment index.
//
// Usage:
//
//	odrl-bench                 # run everything at full fidelity
//	odrl-bench -experiment F2  # one experiment
//	odrl-bench -quick          # small/short runs for smoke checks
//
// Output is aligned text tables on stdout, one block per experiment, in the
// format EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment ID (T1, T2, F1..F10) or 'all'")
		cacheDir    = flag.String("cache", "", "content-addressed result cache directory shared with odrl-run ('' = no cache); only table runs are cached, never bench or report modes")
		quick       = flag.Bool("quick", false, "shrink runs for a fast smoke pass")
		cores       = flag.Int("cores", 0, "override platform core count")
		budget      = flag.Float64("budget", 0, "override chip budget (W)")
		seed        = flag.Uint64("seed", 0, "override random seed")
		workers     = flag.Int("j", 0, "worker goroutines for run fan-out and chip sharding (0 = one per CPU, 1 = sequential); results are identical for any value")
		faultSpec   = flag.String("fault-plan", "", "inject faults into every run: an intensity in [0,1] for the canonical plan, or a plan JSON file path (F18 sweeps its own plans)")
		benchPar    = flag.String("bench-par", "", "measure sequential-vs-parallel wall clock and write a JSON report (e.g. BENCH_par.json) to this file, then exit")
		benchMon    = flag.String("bench-monitor", "", "measure monitoring-off-vs-on wall clock and write a JSON report (e.g. BENCH_monitor.json) to this file, then exit")
		benchLearn  = flag.String("bench-learn", "", "measure learning-introspection-off-vs-on wall clock and write a JSON report (e.g. BENCH_learn.json) to this file, then exit")
		benchStep   = flag.String("bench-step", "", "measure single-thread epoch-kernel throughput (struct-of-arrays vs reference) and write a JSON report (e.g. BENCH_step.json) to this file, then exit non-zero if the speedup gate fails")
		outDir      = flag.String("o", "", "also write one CSV per experiment into this directory")
		reportFile  = flag.String("report", "", "write a complete markdown report (claim verdicts + all tables) to this file and exit")
		traceEvents = flag.String("trace-events", "", "write structured JSONL epoch events for every run to this file")
		traceEvery  = flag.Int("trace-every", 100, "sample every Nth epoch in -trace-events output")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address for live profiling")
		monitorOn   = flag.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = flag.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = flag.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = flag.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = flag.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = flag.String("artifacts", "", "record every run into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file on clean exit (go tool pprof format)")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on clean exit, after a final GC")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "odrl-bench:", err)
				return
			}
			runtime.GC() // settle to live objects so the profile shows retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			}
			f.Close()
		}()
	}

	if *benchPar != "" {
		rep, err := experiments.BenchPar(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchPar)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		werr := rep.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		for _, c := range rep.Cases {
			fmt.Printf("%-32s workers=%d  seq %.2fs  par %.2fs  speedup %.2fx\n",
				c.Name, c.Workers, c.SequentialS, c.ParallelS, c.Speedup)
		}
		fmt.Printf("report written to %s (%d CPUs)\n", *benchPar, rep.HostCPUs)
		return
	}

	if *benchStep != "" {
		rep, err := experiments.BenchStep(experiments.Config{Quick: *quick})
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchStep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		werr := rep.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		for _, c := range rep.Cases {
			fmt.Printf("%-24s cores=%-5d soa %10.0f ep/s  ref %9.0f ep/s  speedup %.2fx\n",
				c.Name, c.Cores, c.EpochsPerSec, c.ReferenceEpochsPerSec, c.Speedup)
		}
		fmt.Printf("report written to %s (%d CPUs)\n", *benchStep, rep.HostCPUs)
		if !*quick && !rep.Gate.Pass {
			fmt.Fprintf(os.Stderr, "odrl-bench: throughput gate FAILED: %s speedup %.2fx < %.1fx\n",
				rep.Gate.Case, rep.Gate.Speedup, rep.Gate.MinSpeedup)
			os.Exit(1)
		}
		return
	}

	if *benchMon != "" {
		rep, err := experiments.BenchMonitor()
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchMon)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		werr := rep.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		for _, c := range rep.Cases {
			fmt.Printf("%-32s epochs=%d  off %.2fs  on %.2fs  overhead %.2f%%\n",
				c.Name, c.Epochs, c.OffS, c.OnS, 100*c.OverheadFrac)
		}
		fmt.Printf("report written to %s (%d CPUs)\n", *benchMon, rep.HostCPUs)
		return
	}

	if *benchLearn != "" {
		rep, err := experiments.BenchLearn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchLearn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		werr := rep.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		for _, c := range rep.Cases {
			fmt.Printf("%-32s epochs=%d  off %.2fs  on %.2fs  overhead %.2f%%\n",
				c.Name, c.Epochs, c.OffS, c.OnS, 100*c.OverheadFrac)
		}
		fmt.Printf("report written to %s (%d CPUs)\n", *benchLearn, rep.HostCPUs)
		return
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(2)
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(1)
	}
	defer ocli.Close()
	// Experiments assemble runs internally, so the tracer hooks in through
	// the harness-level default observer.
	sim.DefaultObserver = ocli.Observer()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(1)
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lcli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(2)
	}
	defer lcli.Close(os.Stderr)
	if lcli != nil {
		sim.DefaultLearn = lcli.Layer
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
	}

	cfg := experiments.Default()
	cfg.Quick = *quick
	cfg.Workers = *workers
	plan, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(1)
	}
	cfg.FaultPlan = plan
	if *cores > 0 {
		cfg.Cores = *cores
	}
	if *budget > 0 {
		cfg.BudgetW = *budget
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}

	if *reportFile != "" {
		f, err := os.Create(*reportFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		ropts := experiments.ReportOptions{Config: cfg}
		if *experiment != "all" {
			ropts.IDs = []string{*experiment}
		}
		ropts.Elapsed = func(id string, d time.Duration) {
			fmt.Printf("(%s finished in %.1fs)\n", id, d.Seconds())
		}
		werr := experiments.WriteReport(f, ropts)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: report: %v %v\n", werr, cerr)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *reportFile)
		return
	}

	// Table runs go through the scenario engine: each experiment's
	// checked-in spec, with the CLI flags folded in as spec overrides, so
	// odrl-bench and odrl-run share one execution path and one cache.
	engine := &scenario.Engine{}
	if *cacheDir != "" {
		cache, err := scenario.NewCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-bench:", err)
			os.Exit(1)
		}
		engine.Cache = cache
	}
	specFor := func(id string) (scenario.Spec, error) {
		spec, err := scenario.Builtin(id)
		if err != nil {
			return scenario.Spec{}, err
		}
		spec.Quick = *quick
		spec.Workers = *workers
		spec.FaultPlan = plan
		if *cores > 0 {
			spec.Cores = *cores
		}
		if *budget > 0 {
			spec.BudgetW = *budget
		}
		if *seed > 0 {
			spec.Seeds = []uint64{*seed}
		}
		return spec, nil
	}

	run := func(id string) {
		start := time.Now()
		spec, err := specFor(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl, info, err := engine.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if info.CacheHit {
			fmt.Fprintf(os.Stderr, "odrl-bench: %s: cache hit %s\n", id, info.Hash)
		}
		if _, err := tbl.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "odrl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, strings.ToLower(id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "odrl-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
			werr := tbl.WriteCSV(f)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				fmt.Fprintf(os.Stderr, "odrl-bench: %s: write %s failed\n", id, path)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	if *experiment == "all" {
		for _, e := range experiments.All() {
			run(e.ID)
		}
		return
	}
	if _, err := experiments.ByID(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "odrl-bench:", err)
		os.Exit(1)
	}
	run(*experiment)
}
