package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/sim"
)

// record produces one complete artifact directory the way the CLIs do:
// a full-stride JSONL trace plus a policy snapshot chain.
func record(t *testing.T, dir string, seed uint64) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.NewWriterSink(f), obs.TracerOptions{Every: 1})

	opts := sim.DefaultOptions()
	opts.Cores = 16
	opts.Workers = 1
	opts.WarmupS = 0
	opts.MeasureS = 1
	opts.Seed = seed
	opts.Observer = tracer
	opts.Learn = learn.New(learn.Options{
		// Permissive detector so short test runs still emit converged events.
		Detector:      learn.Detector{StableEpochs: 50, TDThreshold: 0.6, EMAAlpha: 0.1},
		SnapshotEvery: 200,
		ArtifactDir:   dir,
	})
	c, err := sim.NewController("od-rl", sim.DefaultEnv(opts.Cores))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(opts, c); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := opts.Learn.Runs()[0].Err(); err != nil {
		t.Fatal(err)
	}
}

func TestInspectSingleRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runA")
	record(t, dir, 1)

	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"controller od-rl", "learning curves", "td_ema", "epsilon",
		"convergence:", "epochs-to-converge", "policy snapshots:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
	if !strings.ContainsAny(got, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparklines in report:\n%s", got)
	}
}

func TestInspectDiff(t *testing.T) {
	base := t.TempDir()
	dirA := filepath.Join(base, "runA")
	dirB := filepath.Join(base, "runB")
	record(t, dirA, 1)
	record(t, dirB, 7)

	var out, errb bytes.Buffer
	if code := run([]string{dirA, dirB}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"== diff:", "final metric", "greedy-action disagreement",
		"first recorded policy divergence: epoch",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("diff missing %q:\n%s", want, got)
		}
	}
}

func TestInspectIdenticalRunsDoNotDiverge(t *testing.T) {
	base := t.TempDir()
	dirA := filepath.Join(base, "runA")
	dirB := filepath.Join(base, "runB")
	record(t, dirA, 3)
	record(t, dirB, 3)

	var out, errb bytes.Buffer
	if code := run([]string{dirA, dirB}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "policies identical at every common snapshot epoch") {
		t.Fatalf("same-seed runs reported divergence:\n%s", got)
	}
	if !strings.Contains(got, "disagreement (final policies): 0/") {
		t.Fatalf("same-seed runs disagree on greedy actions:\n%s", got)
	}
}

func TestInspectBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"a", "b", "c"}, &out, &errb); code != 2 {
		t.Fatalf("three dirs: exit %d, want 2", code)
	}
	if code := run([]string{t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("empty dir: exit %d, want 1", code)
	}
}
