package main

import (
	"os"
	"testing"

	"repro/internal/obs/ledger"
)

// TestMain points the run ledger at a throwaway directory so CLI tests
// never write .odrl/ into the package tree.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "odrl-ledger-test")
	if err != nil {
		panic(err)
	}
	os.Setenv(ledger.EnvDir, dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}
