// Command odrl-inspect reads recorded run directories (the -artifacts
// layout the other commands write: trace.jsonl plus content-addressed
// policy snapshots) and reports learning dynamics: curves, per-agent
// convergence, and — given two runs — a cross-run diff down to per-state
// greedy-action disagreement and the first epoch the policies diverged.
//
// Usage:
//
//	odrl -learn -artifacts runA -seed 1   # record
//	odrl -learn -artifacts runB -seed 2
//	odrl-inspect runA                     # single-run learning report
//	odrl-inspect runA runB                # cross-run diff
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runData is everything odrl-inspect distils from one recorded run
// directory.
type runData struct {
	dir     string
	id      int64
	meta    obs.RunMeta
	epochs  int // total epochs per run_end (0 when the record is missing)
	sampled int
	learn   []obs.LearnEvent
	conv    []obs.ConvergedEvent
	snaps   []learn.LoadedSnap
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed, 1 means a run directory could not be read.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID     = fs.Int64("run", 0, "trace run ID to inspect when a directory holds several (default: the first recorded)")
		width     = fs.Int("width", 60, "learning-curve sparkline width in characters")
		ledgerDir = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record")
		noLedger  = fs.Bool("no-ledger", false, "disable the run ledger")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: odrl-inspect [flags] RUNDIR [RUNDIR2]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dirs := fs.Args()
	if len(dirs) < 1 || len(dirs) > 2 {
		fs.Usage()
		return 2
	}
	if *width < 8 {
		fmt.Fprintln(stderr, "odrl-inspect: -width must be at least 8")
		return 2
	}

	lcli := ledger.StartCLI("odrl-inspect", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	runs := make([]*runData, len(dirs))
	for i, dir := range dirs {
		rd, err := loadRun(dir, *runID)
		if err != nil {
			lcli.Finish(err)
			fmt.Fprintln(stderr, "odrl-inspect:", err)
			return 1
		}
		runs[i] = rd
	}

	report(stdout, runs[0], *width)
	if len(runs) == 2 {
		fmt.Fprintln(stdout)
		report(stdout, runs[1], *width)
		fmt.Fprintln(stdout)
		diff(stdout, runs[0], runs[1])
	}
	lcli.Finish(nil)
	return 0
}

// loadRun reads one artifact directory: the JSONL trace plus any policy
// snapshot chain recorded alongside it.
func loadRun(dir string, wantID int64) (*runData, error) {
	f, err := os.Open(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("%s: %w (is this an -artifacts directory?)", dir, err)
	}
	recs, err := obs.ReadRecords(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}

	rd := &runData{dir: dir, id: wantID}
	if rd.id == 0 {
		for _, r := range recs {
			if r.Type == "run_start" {
				rd.id = r.Run
				break
			}
		}
	}
	if rd.id == 0 {
		return nil, fmt.Errorf("%s: trace holds no run_start record", dir)
	}
	found := false
	for _, r := range recs {
		if r.Run != rd.id {
			continue
		}
		switch r.Type {
		case "run_start":
			rd.meta = r.Meta
			found = true
		case "learn":
			rd.learn = append(rd.learn, r.Learn)
		case "converged":
			rd.conv = append(rd.conv, r.Conv)
		case "run_end":
			rd.epochs, rd.sampled = r.Epochs, r.Sampled
		}
	}
	if !found {
		return nil, fmt.Errorf("%s: no run %d in trace", dir, rd.id)
	}

	// Snapshot chains live in run-<id>-<controller> subdirectories written
	// by the learn layer; the layer's run counter matches the tracer's when
	// both observe the same sequence of runs, so prefer an exact id match
	// and fall back to a lone directory.
	snapDirs, err := filepath.Glob(filepath.Join(dir, "run-*"))
	if err == nil && len(snapDirs) > 0 {
		sort.Strings(snapDirs)
		chosen := ""
		prefix := filepath.Join(dir, fmt.Sprintf("run-%d-", rd.id))
		for _, sd := range snapDirs {
			if strings.HasPrefix(sd, prefix) {
				chosen = sd
				break
			}
		}
		if chosen == "" && len(snapDirs) == 1 {
			chosen = snapDirs[0]
		}
		if chosen != "" {
			snaps, err := learn.LoadSnapshots(chosen)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", chosen, err)
			}
			rd.snaps = snaps
		}
	}
	return rd, nil
}

// report prints one run's learning story.
func report(w io.Writer, rd *runData, width int) {
	m := rd.meta
	fmt.Fprintf(w, "== %s: run %d ==\n", rd.dir, rd.id)
	fmt.Fprintf(w, "controller %s, workload %s, %d cores, budget %g W, seed %d\n",
		m.Controller, m.Workload, m.Cores, m.BudgetW, m.Seed)
	if rd.epochs > 0 {
		fmt.Fprintf(w, "epochs: %d measured, %d sampled, %d learn events\n",
			rd.epochs, rd.sampled, len(rd.learn))
	}
	if len(rd.learn) == 0 {
		fmt.Fprintln(w, "no learning telemetry in trace (recorded without -learn?)")
		return
	}

	fmt.Fprintf(w, "\nlearning curves (%d samples):\n", len(rd.learn))
	for _, c := range []struct {
		name string
		get  func(*obs.LearnEvent) float64
	}{
		{"td_ema", func(e *obs.LearnEvent) float64 { return e.TDErrEMA }},
		{"churn", func(e *obs.LearnEvent) float64 { return e.Churn }},
		{"converged", func(e *obs.LearnEvent) float64 { return e.ConvergedFrac }},
		{"coverage", func(e *obs.LearnEvent) float64 { return e.Coverage }},
		{"epsilon", func(e *obs.LearnEvent) float64 { return e.Epsilon }},
	} {
		vals := make([]float64, len(rd.learn))
		for i := range rd.learn {
			vals[i] = c.get(&rd.learn[i])
		}
		fmt.Fprintf(w, "  %-10s %s  first %.4g  last %.4g\n",
			c.name, sparkline(vals, width), vals[0], vals[len(vals)-1])
	}

	last := rd.learn[len(rd.learn)-1]
	fmt.Fprintf(w, "\nconvergence: %d agents converged (%.1f%% of chip at last sample)\n",
		len(rd.conv), 100*last.ConvergedFrac)
	if len(rd.conv) > 0 {
		epochsTo := make([]int, len(rd.conv))
		for i, cv := range rd.conv {
			epochsTo[i] = cv.EpochsToConverge
		}
		sort.Ints(epochsTo)
		fmt.Fprintf(w, "  epochs-to-converge: p50 %d, min %d, max %d\n",
			epochsTo[len(epochsTo)/2], epochsTo[0], epochsTo[len(epochsTo)-1])
		n := len(rd.conv)
		if n > 8 {
			n = 8
		}
		for _, cv := range rd.conv[:n] {
			fmt.Fprintf(w, "  core %3d at epoch %6d (%d learning epochs, td_ema %.4f, epsilon %.3f)\n",
				cv.Core, cv.Epoch, cv.EpochsToConverge, cv.TDErrEMA, cv.Epsilon)
		}
		if len(rd.conv) > n {
			fmt.Fprintf(w, "  ... and %d more\n", len(rd.conv)-n)
		}
	}

	if len(rd.snaps) > 0 {
		first, lastS := rd.snaps[0], rd.snaps[len(rd.snaps)-1]
		fmt.Fprintf(w, "\npolicy snapshots: %d (epochs %d..%d), shape %dx%dx%d, final %s\n",
			len(rd.snaps), first.Epoch, lastS.Epoch,
			lastS.Cores, lastS.States, lastS.Actions, lastS.Hash[:12])
	} else {
		fmt.Fprintln(w, "\npolicy snapshots: none recorded")
	}
}

// diff prints the cross-run comparison: final metric deltas, convergence
// deltas, per-state greedy disagreement and the first diverging snapshot.
func diff(w io.Writer, a, b *runData) {
	fmt.Fprintf(w, "== diff: %s vs %s ==\n", a.dir, b.dir)
	if len(a.learn) > 0 && len(b.learn) > 0 {
		la, lb := a.learn[len(a.learn)-1], b.learn[len(b.learn)-1]
		fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "final metric", "A", "B", "delta")
		for _, row := range []struct {
			name string
			va   float64
			vb   float64
		}{
			{"td_ema", la.TDErrEMA, lb.TDErrEMA},
			{"td_p99", la.TDErrP99, lb.TDErrP99},
			{"churn", la.Churn, lb.Churn},
			{"greedy_frac", la.GreedyFrac, lb.GreedyFrac},
			{"converged", la.ConvergedFrac, lb.ConvergedFrac},
			{"coverage", la.Coverage, lb.Coverage},
			{"epsilon", la.Epsilon, lb.Epsilon},
			{"q_spread", la.QSpread, lb.QSpread},
		} {
			fmt.Fprintf(w, "%-14s %12.5g %12.5g %+12.5g\n", row.name, row.va, row.vb, row.vb-row.va)
		}
	}
	fmt.Fprintf(w, "converged agents: A %d, B %d\n", len(a.conv), len(b.conv))

	switch {
	case len(a.snaps) == 0 || len(b.snaps) == 0:
		fmt.Fprintln(w, "policy diff: skipped (both runs need snapshots)")
	case a.snaps[len(a.snaps)-1].Cores != b.snaps[len(b.snaps)-1].Cores ||
		a.snaps[len(a.snaps)-1].States != b.snaps[len(b.snaps)-1].States ||
		a.snaps[len(a.snaps)-1].Actions != b.snaps[len(b.snaps)-1].Actions:
		fmt.Fprintln(w, "policy diff: skipped (snapshot shapes differ)")
	default:
		fa, fb := a.snaps[len(a.snaps)-1], b.snaps[len(b.snaps)-1]
		disagree, perCore := greedyDisagreement(fa, fb)
		total := fa.Cores * fa.States
		fmt.Fprintf(w, "greedy-action disagreement (final policies): %d/%d core-states (%.1f%%)\n",
			disagree, total, 100*float64(disagree)/float64(total))
		if disagree > 0 {
			worst := 0
			for c := range perCore {
				if perCore[c] > perCore[worst] {
					worst = c
				}
			}
			fmt.Fprintf(w, "  most divergent core: %d (%d/%d states)\n", worst, perCore[worst], fa.States)
		}
		if e, ok := firstDivergence(a.snaps, b.snaps); ok {
			fmt.Fprintf(w, "first recorded policy divergence: epoch %d\n", e)
		} else {
			fmt.Fprintln(w, "policies identical at every common snapshot epoch")
		}
	}
}

// greedyDisagreement counts (core, state) cells whose argmax action
// differs between two equally shaped policies; ties resolve to the lowest
// action index on both sides, so a disagreement is a real preference flip.
func greedyDisagreement(a, b learn.LoadedSnap) (int, []int) {
	perCore := make([]int, a.Cores)
	total := 0
	per := a.States * a.Actions
	for c := 0; c < a.Cores; c++ {
		for s := 0; s < a.States; s++ {
			off := c*per + s*a.Actions
			if argmax(a.Q[off:off+a.Actions]) != argmax(b.Q[off:off+b.Actions]) {
				perCore[c]++
				total++
			}
		}
	}
	return total, perCore
}

func argmax(q []float64) int {
	best := 0
	for i, v := range q {
		if v > q[best] {
			best = i
		}
	}
	return best
}

// firstDivergence walks both snapshot chains over their common epochs and
// returns the first epoch whose stored policies differ. Content addressing
// makes the comparison a hash check.
func firstDivergence(a, b []learn.LoadedSnap) (int64, bool) {
	ah := make(map[int64]string, len(a))
	for _, s := range a {
		ah[s.Epoch] = s.Hash
	}
	bh := make(map[int64]string, len(b))
	var common []int64
	for _, s := range b {
		if _, ok := ah[s.Epoch]; ok {
			common = append(common, s.Epoch)
			bh[s.Epoch] = s.Hash
		}
	}
	sort.Slice(common, func(i, j int) bool { return common[i] < common[j] })
	for _, e := range common {
		if ah[e] != bh[e] {
			return e, true
		}
	}
	return 0, false
}

// sparkline renders vals as a fixed-width block-character strip, bucketing
// by mean. A flat series renders as a run of middle blocks.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return strings.Repeat(" ", width)
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if len(vals) < width {
		width = len(vals)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		from := i * len(vals) / width
		to := (i + 1) * len(vals) / width
		if to <= from {
			to = from + 1
		}
		sum := 0.0
		for _, v := range vals[from:to] {
			sum += v
		}
		mean := sum / float64(to-from)
		idx := len(blocks) / 2
		if hi > lo {
			idx = int((mean - lo) / (hi - lo) * float64(len(blocks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(blocks) {
				idx = len(blocks) - 1
			}
		}
		out[i] = blocks[idx]
	}
	return string(out)
}
