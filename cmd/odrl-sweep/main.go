// Command odrl-sweep runs one controller across a parameter sweep (budget,
// core count, epoch length or seed) and prints one CSV row per point —
// the raw material for sensitivity plots beyond the canned experiments.
//
// Usage:
//
//	odrl-sweep -controller od-rl -param budget -values 40,55,70,90
//	odrl-sweep -controller maxbips -param cores -values 16,64,256
//	odrl-sweep -controller od-rl -param seed -values 1,2,3,4,5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/monitor"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		controller  = flag.String("controller", "od-rl", "controller name")
		param       = flag.String("param", "budget", "swept parameter: budget | cores | epoch | seed")
		values      = flag.String("values", "40,55,70,90", "comma-separated sweep values")
		cores       = flag.Int("cores", 64, "core count (fixed unless swept)")
		budget      = flag.Float64("budget", 55, "budget in W (fixed unless swept)")
		workloadF   = flag.String("workload", "mix", "workload preset or 'mix'")
		warmup      = flag.Float64("warmup", 2, "warmup seconds")
		measure     = flag.Float64("measure", 4, "measurement seconds")
		seed        = flag.Uint64("seed", 1, "seed (fixed unless swept)")
		writeSpec   = flag.Bool("write-spec", false, "print the canonical scenario spec equivalent to this invocation (runnable with odrl-run) and exit")
		workers     = flag.Int("j", 0, "worker goroutines fanning sweep points out and sharding large chips (0 = one per CPU, 1 = sequential); rows are identical for any value")
		traceEvents = flag.String("trace-events", "", "write structured JSONL epoch events to this file")
		traceEvery  = flag.Int("trace-every", 10, "sample every Nth epoch in -trace-events output")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address")
		monitorOn   = flag.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = flag.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = flag.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = flag.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = flag.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = flag.String("artifacts", "", "record every sweep point into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
	)
	flag.Parse()

	// Parse and validate every sweep value up front so a bad -values entry
	// or unknown -param exits immediately, before any trace files or
	// expensive simulation runs (the fan-out below has no fail-fast).
	points := strings.Split(*values, ",")
	parsed := make([]float64, len(points))
	for i, raw := range points {
		points[i] = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(points[i], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrl-sweep: bad value %q: %v\n", points[i], err)
			os.Exit(1)
		}
		parsed[i] = v
	}
	switch *param {
	case "budget", "cores", "epoch", "seed":
	default:
		fmt.Fprintf(os.Stderr, "odrl-sweep: unknown param %q\n", *param)
		os.Exit(1)
	}

	// -write-spec translates the flag invocation into the declarative
	// scenario contract and exits before any observability side effects.
	if *writeSpec {
		spec := scenario.Spec{
			Workload:    *workloadF,
			Controllers: []string{*controller},
			Cores:       *cores,
			BudgetW:     *budget,
			WarmupS:     *warmup,
			MeasureS:    *measure,
			Sweep:       &scenario.Sweep{Param: *param, Values: parsed},
		}
		// A seed sweep owns the seed axis; otherwise the fixed seed pins it.
		if *param != "seed" {
			spec.Seeds = []uint64{*seed}
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
			os.Exit(2)
		}
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
			os.Exit(2)
		}
		os.Stdout.Write(canon)
		return
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
		os.Exit(2)
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
		os.Exit(1)
	}
	defer ocli.Close()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
		os.Exit(1)
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lcli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
		os.Exit(2)
	}
	defer lcli.Close(os.Stderr)
	if lcli != nil {
		sim.DefaultLearn = lcli.Layer
	}

	// Sweep points are independent runs: fan them out across -j workers,
	// then print rows in sweep order from index-addressed results so the
	// CSV is identical for any worker count.
	rows, err := par.MapErr(*workers, len(points), func(i int) (string, error) {
		raw, v := points[i], parsed[i]

		opts := sim.DefaultOptions()
		opts.Cores = *cores
		opts.Workload = *workloadF
		opts.BudgetW = *budget
		opts.WarmupS = *warmup
		opts.MeasureS = *measure
		opts.Seed = *seed
		opts.Workers = *workers
		opts.Observer = ocli.Observer()
		switch *param {
		case "budget":
			opts.BudgetW = v
		case "cores":
			opts.Cores = int(v)
		case "epoch":
			opts.EpochS = v
		case "seed":
			opts.Seed = uint64(v)
		}

		env := sim.DefaultEnv(opts.Cores)
		env.Seed = opts.Seed
		env.Workers = *workers
		c, err := sim.NewController(*controller, env)
		if err != nil {
			return "", err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return "", err
		}
		s := res.Summary
		return fmt.Sprintf("%s,%s,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g",
			*param, raw, s.Controller, s.BIPS(), s.MeanW, s.PeakW,
			s.OverJ, s.OverTimeFrac(), s.EnergyEff(), s.CtrlTimeS,
			s.CtrlLocalTimeS, s.CtrlGlobalTimeS), nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrl-sweep:", err)
		os.Exit(1)
	}
	fmt.Println("param,value,controller,bips,mean_w,peak_w,over_j,over_time_frac,bips_per_w,ctrl_s,ctrl_local_s,ctrl_global_s")
	for _, row := range rows {
		fmt.Println(row)
	}
}
