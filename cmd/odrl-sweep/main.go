// Command odrl-sweep runs one controller across a parameter sweep (budget,
// core count, epoch length or seed) and prints one CSV row per point —
// the raw material for sensitivity plots beyond the canned experiments.
//
// Usage:
//
//	odrl-sweep -controller od-rl -param budget -values 40,55,70,90
//	odrl-sweep -controller maxbips -param cores -values 16,64,256
//	odrl-sweep -controller od-rl -param seed -values 1,2,3,4,5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/learn"
	"repro/internal/obs/ledger"
	"repro/internal/obs/monitor"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed, 1 means a sweep point failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		controller  = fs.String("controller", "od-rl", "controller name")
		param       = fs.String("param", "budget", "swept parameter: budget | cores | epoch | seed")
		values      = fs.String("values", "40,55,70,90", "comma-separated sweep values")
		cores       = fs.Int("cores", 64, "core count (fixed unless swept)")
		budget      = fs.Float64("budget", 55, "budget in W (fixed unless swept)")
		workloadF   = fs.String("workload", "mix", "workload preset or 'mix'")
		warmup      = fs.Float64("warmup", 2, "warmup seconds")
		measure     = fs.Float64("measure", 4, "measurement seconds")
		seed        = fs.Uint64("seed", 1, "seed (fixed unless swept)")
		writeSpec   = fs.Bool("write-spec", false, "print the canonical scenario spec equivalent to this invocation (runnable with odrl-run) and exit")
		workers     = fs.Int("j", 0, "worker goroutines fanning sweep points out and sharding large chips (0 = one per CPU, 1 = sequential); rows are identical for any value")
		traceEvents = fs.String("trace-events", "", "write structured JSONL epoch events to this file")
		traceEvery  = fs.Int("trace-every", 10, "sample every Nth epoch in -trace-events output")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /debug/obs and /debug/pprof on this address")
		monitorOn   = fs.Bool("monitor", false, "enable the run-health monitor: time series, quantile sketches, claim-invariant alerts, summary on exit")
		alertRules  = fs.String("alert-rules", "", "alert rules JSON file (implies -monitor; default rules derive from each run's budget)")
		perfetto    = fs.String("perfetto", "", "write controller phase spans as Perfetto trace-event JSON to this file on exit (implies -monitor)")
		learnOn     = fs.Bool("learn", false, "enable learning introspection: per-agent TD-error/epsilon/churn telemetry, convergence detection, summary on exit")
		snapEvery   = fs.Int("snapshot-every", 0, "write a content-addressed policy snapshot every N control epochs (0 = only at run end; requires -artifacts)")
		artifacts   = fs.String("artifacts", "", "record every sweep point into this directory: full JSONL trace plus policy snapshots, the layout odrl-inspect reads (implies -learn)")
		ledgerDir   = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger    = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Parse and validate every sweep value up front so a bad -values entry
	// or unknown -param exits immediately, before any trace files or
	// expensive simulation runs (the fan-out below has no fail-fast).
	points := strings.Split(*values, ",")
	parsed := make([]float64, len(points))
	for i, raw := range points {
		points[i] = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(points[i], 64)
		if err != nil {
			fmt.Fprintf(stderr, "odrl-sweep: bad value %q: %v\n", points[i], err)
			return 2
		}
		parsed[i] = v
	}
	switch *param {
	case "budget", "cores", "epoch", "seed":
	default:
		fmt.Fprintf(stderr, "odrl-sweep: unknown param %q\n", *param)
		return 2
	}

	// -write-spec translates the flag invocation into the declarative
	// scenario contract and exits before any observability side effects.
	if *writeSpec {
		spec := scenario.Spec{
			Workload:    *workloadF,
			Controllers: []string{*controller},
			Cores:       *cores,
			BudgetW:     *budget,
			WarmupS:     *warmup,
			MeasureS:    *measure,
			Sweep:       &scenario.Sweep{Param: *param, Values: parsed},
		}
		// A seed sweep owns the seed axis; otherwise the fixed seed pins it.
		if *param != "seed" {
			spec.Seeds = []uint64{*seed}
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(stderr, "odrl-sweep:", err)
			return 2
		}
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(stderr, "odrl-sweep:", err)
			return 2
		}
		stdout.Write(canon)
		return 0
	}

	tracePath, traceStride, err := learn.ResolveTrace(*traceEvents, *traceEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-sweep:", err)
		return 2
	}
	ocli, err := obs.StartCLI(tracePath, traceStride, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-sweep:", err)
		return 1
	}
	defer ocli.Close()
	mcli, err := monitor.StartCLI(ocli, *monitorOn, *alertRules, *perfetto)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-sweep:", err)
		return 1
	}
	defer mcli.Close(os.Stderr)
	if mcli != nil {
		sim.DefaultMonitor = mcli.Monitor
	}
	lrncli, err := learn.StartCLI(ocli, *learnOn, *snapEvery, *artifacts)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-sweep:", err)
		return 2
	}
	defer lrncli.Close(os.Stderr)
	if lrncli != nil {
		sim.DefaultLearn = lrncli.Layer
	}
	lcli := ledger.StartCLI("odrl-sweep", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	// Sweep points pass opts.Observer explicitly (the fan-out never touches
	// the harness default), so the flight recorder wraps that chain here.
	observer := lcli.WrapObserver(ocli.Observer())
	prevSpan := sim.DefaultSpanSink
	sim.DefaultSpanSink = lcli.SpanSink()
	defer func() { sim.DefaultSpanSink = prevSpan }()

	// Sweep points are independent runs: fan them out across -j workers,
	// then print rows in sweep order from index-addressed results so the
	// CSV is identical for any worker count.
	rows, err := par.MapErr(*workers, len(points), func(i int) (string, error) {
		raw, v := points[i], parsed[i]

		opts := sim.DefaultOptions()
		opts.Cores = *cores
		opts.Workload = *workloadF
		opts.BudgetW = *budget
		opts.WarmupS = *warmup
		opts.MeasureS = *measure
		opts.Seed = *seed
		opts.Workers = *workers
		opts.Observer = observer
		switch *param {
		case "budget":
			opts.BudgetW = v
		case "cores":
			opts.Cores = int(v)
		case "epoch":
			opts.EpochS = v
		case "seed":
			opts.Seed = uint64(v)
		}

		env := sim.DefaultEnv(opts.Cores)
		env.Seed = opts.Seed
		env.Workers = *workers
		c, err := sim.NewController(*controller, env)
		if err != nil {
			return "", err
		}
		res, err := sim.Run(opts, c)
		if err != nil {
			return "", err
		}
		s := res.Summary
		return fmt.Sprintf("%s,%s,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g",
			*param, raw, s.Controller, s.BIPS(), s.MeanW, s.PeakW,
			s.OverJ, s.OverTimeFrac(), s.EnergyEff(), s.CtrlTimeS,
			s.CtrlLocalTimeS, s.CtrlGlobalTimeS), nil
	})
	lcli.Finish(err)
	if err != nil {
		fmt.Fprintln(stderr, "odrl-sweep:", err)
		return 1
	}
	fmt.Fprintln(stdout, "param,value,controller,bips,mean_w,peak_w,over_j,over_time_frac,bips_per_w,ctrl_s,ctrl_local_s,ctrl_global_s")
	for _, row := range rows {
		fmt.Fprintln(stdout, row)
	}
	return 0
}
