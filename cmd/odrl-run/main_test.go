package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/ledger"
	"repro/internal/scenario"
)

// TestMain points the run ledger at a throwaway directory so CLI tests
// never write .odrl/ into the package tree.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "odrl-run-ledger")
	if err != nil {
		panic(err)
	}
	os.Setenv(ledger.EnvDir, dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeSpec drops a spec file into a temp dir and returns its path.
func writeSpec(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tinySpecJSON is a comparison spec small enough for CLI tests.
const tinySpecJSON = `{
  "name": "cli tiny",
  "workload": "canneal",
  "controllers": ["pid"],
  "cores": 4,
  "budget_w": 8,
  "warmup_s": 0.05,
  "measure_s": 0.1,
  "seeds": [3],
  "workers": 1
}`

// TestRunExit2 covers every malformed-invocation path: all must exit 2
// before any simulation work, with a diagnostic on stderr.
func TestRunExit2(t *testing.T) {
	valid := writeSpec(t, "ok.json", tinySpecJSON)
	cases := []struct {
		name string
		args []string
		want string // substring required on stderr ("" = usage is enough)
	}{
		{"no args", nil, "usage:"},
		{"two positional", []string{valid, valid}, "expected one spec file"},
		{"builtin plus file", []string{"-builtin", "F1", valid}, "mutually exclusive"},
		{"builtin plus list", []string{"-builtin", "F1", "-list"}, "mutually exclusive"},
		{"dry-run with csv", []string{"-dry-run", "-csv", valid}, "conflicts"},
		{"dry-run with o", []string{"-dry-run", "-o", "x.txt", valid}, "conflicts"},
		{"list with csv", []string{"-list", "-csv"}, "takes no other flags"},
		{"list with cache", []string{"-list", "-cache", "d"}, "takes no other flags"},
		{"unknown flag", []string{"-frobnicate", valid}, "flag provided but not defined"},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.json")}, "no such file"},
		{"unknown builtin", []string{"-builtin", "F99"}, "no builtin spec"},
		{
			"unknown spec field",
			[]string{writeSpec(t, "bad.json", `{"workloadd": "canneal"}`)},
			"unknown field",
		},
		{
			"invalid spec",
			[]string{writeSpec(t, "bad.json", `{"controllers": ["clippy"]}`)},
			"unknown controller",
		},
		{
			"trailing data",
			[]string{writeSpec(t, "bad.json", `{} {}`)},
			"trailing data",
		},
		{
			"quick override re-validated",
			// Valid on its own, but -j introduces no issue; instead the
			// spec becomes invalid only after the override is applied:
			// sweep seed specs reject an explicit seeds list.
			[]string{writeSpec(t, "bad.json", `{"seeds": [1, 2], "experiment": "F1"}`)},
			"experiment",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestRunList: -list prints one line per registered experiment and exits 0.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	ids := scenario.BuiltinIDs()
	if len(lines) != len(ids) {
		t.Fatalf("listed %d specs, registry has %d", len(lines), len(ids))
	}
	for i, id := range ids {
		if !strings.HasPrefix(lines[i], id) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], id)
		}
	}
}

// TestRunDryRun: -dry-run prints exactly the canonical spec followed by its
// content hash, runs nothing, and exits 0.
func TestRunDryRun(t *testing.T) {
	path := writeSpec(t, "spec.json", tinySpecJSON)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dry-run", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	spec, err := scenario.LoadBytes([]byte(tinySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	want := string(canon) + "hash: " + hash + "\n"
	if stdout.String() != want {
		t.Errorf("dry-run output:\n%s--- want\n%s", stdout.String(), want)
	}
}

// TestRunQuickOverride: -dry-run shows that -quick folds into the spec (and
// so into its identity) before anything runs.
func TestRunQuickOverride(t *testing.T) {
	path := writeSpec(t, "spec.json", tinySpecJSON)
	var plain, quick bytes.Buffer
	if code := run([]string{"-dry-run", path}, &plain, &plain); code != 0 {
		t.Fatal(plain.String())
	}
	if code := run([]string{"-dry-run", "-quick", path}, &quick, &quick); code != 0 {
		t.Fatal(quick.String())
	}
	if !strings.Contains(quick.String(), `"quick": true`) {
		t.Errorf("-quick missing from canonical spec:\n%s", quick.String())
	}
	if plain.String() == quick.String() {
		t.Error("-quick did not change the canonical spec or hash")
	}
}

// TestRunRunnerFailure: a spec that validates but fails inside the
// simulation exits 1 (not 2) and caches nothing.
func TestRunRunnerFailure(t *testing.T) {
	path := writeSpec(t, "fail.json", `{
	  "workload": "canneal",
	  "controllers": ["pid"],
	  "cores": 4,
	  "warmup_s": 0.05,
	  "measure_s": 0.1,
	  "workers": 1,
	  "sweep": {"param": "budget", "values": [-5]}
	}`)
	cacheDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-cache", cacheDir, path}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed run left cache entries: %v", entries)
	}
}

// TestRunBuiltinParity: the CLI's builtin path renders the same bytes the
// engine produces for the checked-in spec — no formatting drift in main.
func TestRunBuiltinParity(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-builtin", "T1", "-quick", "-j", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	spec, err := scenario.Builtin("T1")
	if err != nil {
		t.Fatal(err)
	}
	spec.Quick = true
	spec.Workers = 1
	tbl, _, err := (&scenario.Engine{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if _, err := tbl.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != want.String() {
		t.Errorf("CLI output differs from engine table:\n--- cli\n%s--- engine\n%s", stdout.String(), want.String())
	}
}

// TestRunNovelSpecWithCache is the acceptance scenario: a novel spec
// combining a non-default platform, a workload, a fault plan and alert
// rules runs end-to-end; re-running it against the same cache (at a
// different worker count) is a cache hit with byte-identical output.
func TestRunNovelSpecWithCache(t *testing.T) {
	path := writeSpec(t, "novel.json", `{
	  "name": "ntc canneal under faults",
	  "platform": "manycore-ntc",
	  "workload": "canneal",
	  "controllers": ["pid", "greedy"],
	  "cores": 8,
	  "budget_w": 12,
	  "warmup_s": 0.05,
	  "measure_s": 0.1,
	  "seeds": [7],
	  "fault_plan": {"seed": 11, "dead_core_frac": 0.25},
	  "alert_rules": [
	    {"name": "budget-overshoot", "metric": "power_w", "op": ">", "threshold": 14, "for_epochs": 2}
	  ]
	}`)
	cacheDir := t.TempDir()

	var out1, err1 bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "-j", "1", path}, &out1, &err1); code != 0 {
		t.Fatalf("first run exit = %d, stderr: %s", code, err1.String())
	}
	if strings.Contains(err1.String(), "cache hit") {
		t.Fatalf("first run claimed a cache hit: %s", err1.String())
	}
	for _, col := range []string{"faults", "alerts"} {
		if !strings.Contains(out1.String(), col) {
			t.Errorf("novel-spec table missing %q column:\n%s", col, out1.String())
		}
	}

	var out2, err2 bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "-j", "4", path}, &out2, &err2); code != 0 {
		t.Fatalf("second run exit = %d, stderr: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "cache hit") {
		t.Fatalf("second run missed the cache: %s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached rerun not byte-identical:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
}

// TestRunLedgerRecord: a real execution appends exactly one run record
// carrying the scenario join key (spec hash) and cache-hit flag, -no-ledger
// leaves no trace, and a failed run is recorded as failed.
func TestRunLedgerRecord(t *testing.T) {
	path := writeSpec(t, "spec.json", tinySpecJSON)
	ldir := t.TempDir()
	cacheDir := t.TempDir()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ledger", ldir, "-cache", cacheDir, path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	recs, errs := ledger.Read(ldir)
	if len(errs) > 0 || len(recs) != 1 {
		t.Fatalf("records=%d errs=%v", len(recs), errs)
	}
	r := recs[0]
	if r.Tool != "odrl-run" || r.Status != ledger.StatusOK {
		t.Fatalf("record: tool=%q status=%q", r.Tool, r.Status)
	}
	if len(r.Scenarios) != 1 || r.Scenarios[0].SpecHash == "" || r.Scenarios[0].CacheHit {
		t.Fatalf("scenarios: %+v", r.Scenarios)
	}
	if len(r.Runs) == 0 || r.Runs[0].Epochs == 0 {
		t.Fatalf("no run summaries observed: %+v", r.Runs)
	}

	// The cached rerun still records a run, marked as a cache hit.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-ledger", ldir, "-cache", cacheDir, path}, &stdout, &stderr); code != 0 {
		t.Fatalf("rerun exit = %d, stderr: %s", code, stderr.String())
	}
	recs, errs = ledger.Read(ldir)
	if len(errs) > 0 || len(recs) != 2 {
		t.Fatalf("after rerun: records=%d errs=%v", len(recs), errs)
	}
	if !recs[1].Scenarios[0].CacheHit {
		t.Fatalf("rerun not marked cache hit: %+v", recs[1].Scenarios)
	}
	if recs[0].Scenarios[0].SpecHash != recs[1].Scenarios[0].SpecHash {
		t.Fatal("spec hash join key differs between identical runs")
	}

	// -no-ledger must leave the directory untouched.
	before := len(recs)
	if code := run([]string{"-ledger", ldir, "-no-ledger", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("no-ledger exit = %d, stderr: %s", code, stderr.String())
	}
	recs, _ = ledger.Read(ldir)
	if len(recs) != before {
		t.Fatalf("-no-ledger still appended: %d -> %d", before, len(recs))
	}

	// A failing run is recorded with status=failed and the error text.
	bad := writeSpec(t, "fail.json", `{
	  "workload": "canneal", "controllers": ["pid"], "cores": 4,
	  "warmup_s": 0.05, "measure_s": 0.1, "workers": 1,
	  "sweep": {"param": "budget", "values": [-5]}
	}`)
	if code := run([]string{"-ledger", ldir, bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad run exit = %d, stderr: %s", code, stderr.String())
	}
	recs, errs = ledger.Read(ldir)
	if len(errs) > 0 || len(recs) != before+1 {
		t.Fatalf("after failure: records=%d errs=%v", len(recs), errs)
	}
	last := recs[len(recs)-1]
	if last.Status != ledger.StatusFailed || last.Error == "" {
		t.Fatalf("failed run record: status=%q error=%q", last.Status, last.Error)
	}
}

// TestRunCSVAndOutputFile: -csv and -o route the same table through the
// CSV writer and to a file.
func TestRunCSVAndOutputFile(t *testing.T) {
	path := writeSpec(t, "spec.json", tinySpecJSON)
	outPath := filepath.Join(t.TempDir(), "out.csv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", "-o", outPath, path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-o still wrote to stdout: %q", stdout.String())
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "seed,workload,controller") {
		t.Errorf("CSV header = %q", strings.SplitN(string(b), "\n", 2)[0])
	}
}
