// Command odrl-run executes a declarative scenario spec (see
// internal/scenario): the JSON contract shared by the checked-in F-series
// experiments, user-submitted novel scenarios, and the planned fleet
// service. Results are the same tables the canned evaluation emits, and a
// content-addressed cache makes re-running an unchanged spec free.
//
// Usage:
//
//	odrl-run spec.json                 # run a spec file (or '-' for stdin)
//	odrl-run -builtin F1               # run a checked-in experiment spec
//	odrl-run -dry-run spec.json        # print canonical spec + hash, no runs
//	odrl-run -cache .odrl-cache spec.json
//	odrl-run -list                     # list checked-in specs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs/ledger"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: parse+validate flags and
// spec, then dispatch. Exit code 2 means the invocation or spec was
// malformed (nothing was simulated), 1 means a run itself failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: odrl-run [flags] <spec.json | ->")
		fs.PrintDefaults()
	}
	var (
		builtin   = fs.String("builtin", "", "run the checked-in spec for an experiment ID (T1, T2, F1..F19) instead of a file")
		list      = fs.Bool("list", false, "list the checked-in experiment specs and exit")
		dryRun    = fs.Bool("dry-run", false, "validate, print the canonical spec and its content hash, and exit without running")
		cacheDir  = fs.String("cache", "", "content-addressed result cache directory: identical specs re-use stored tables ('' = no cache)")
		csvOut    = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		outFile   = fs.String("o", "", "write the table to this file instead of stdout")
		quick     = fs.Bool("quick", false, "shrink runs for a fast smoke pass (overrides the spec's quick field)")
		workers   = fs.Int("j", -1, "override the spec's worker count (0 = one per CPU, 1 = sequential); results and cache keys are identical for any value")
		ledgerDir = fs.String("ledger", "", "run-ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+"): append a queryable run record and arm the flight recorder")
		noLedger  = fs.Bool("no-ledger", false, "disable the run ledger and flight recorder")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Exactly one spec source; silently preferring one would make "which
	// scenario did I just run?" unanswerable.
	sources := 0
	for _, on := range []bool{*builtin != "", *list, fs.NArg() == 1} {
		if on {
			sources++
		}
	}
	if fs.NArg() > 1 {
		fmt.Fprintf(stderr, "odrl-run: expected one spec file, got %d arguments\n", fs.NArg())
		return 2
	}
	if sources == 0 {
		fs.Usage()
		return 2
	}
	if sources > 1 {
		fmt.Fprintln(stderr, "odrl-run: -builtin, -list and a spec file are mutually exclusive")
		return 2
	}
	if *dryRun && (*csvOut || *outFile != "") {
		fmt.Fprintln(stderr, "odrl-run: -dry-run prints the canonical spec; it conflicts with -csv and -o")
		return 2
	}
	if *list && (*dryRun || *csvOut || *outFile != "" || *cacheDir != "") {
		fmt.Fprintln(stderr, "odrl-run: -list takes no other flags")
		return 2
	}

	if *list {
		for _, id := range scenario.BuiltinIDs() {
			spec, err := scenario.Builtin(id)
			if err != nil {
				fmt.Fprintln(stderr, "odrl-run:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%-4s %s\n", id, spec.Name)
		}
		return 0
	}

	var (
		spec scenario.Spec
		err  error
	)
	switch {
	case *builtin != "":
		spec, err = scenario.Builtin(*builtin)
	case fs.Arg(0) == "-":
		spec, err = scenario.Load(os.Stdin)
	default:
		f, ferr := os.Open(fs.Arg(0))
		if ferr != nil {
			fmt.Fprintln(stderr, "odrl-run:", ferr)
			return 2
		}
		spec, err = scenario.Load(f)
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(stderr, "odrl-run:", err)
		return 2
	}
	if *quick {
		spec.Quick = true
	}
	if *workers >= 0 {
		spec.Workers = *workers
	}
	// Re-validate after overrides: cheap, and it keeps the invariant that
	// nothing past this point runs an invalid spec.
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, "odrl-run:", err)
		return 2
	}

	hash, err := spec.Hash()
	if err != nil {
		fmt.Fprintln(stderr, "odrl-run:", err)
		return 2
	}
	if *dryRun {
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(stderr, "odrl-run:", err)
			return 2
		}
		stdout.Write(canon)
		fmt.Fprintf(stdout, "hash: %s\n", hash)
		return 0
	}

	// The ledger session starts only once a real execution begins (usage
	// errors, -list and -dry-run leave no run record) and closes on every
	// path through Finish, so failed runs are recorded as failed.
	lcli := ledger.StartCLI("odrl-run", args, ledger.ResolveDir(*ledgerDir), *noLedger)
	prevObs, prevSpan := sim.DefaultObserver, sim.DefaultSpanSink
	sim.DefaultObserver = lcli.WrapObserver(prevObs)
	sim.DefaultSpanSink = lcli.SpanSink()
	defer func() { sim.DefaultObserver, sim.DefaultSpanSink = prevObs, prevSpan }()
	runErr := func() error {
		engine := &scenario.Engine{}
		if *cacheDir != "" {
			cache, err := scenario.NewCache(*cacheDir)
			if err != nil {
				return err
			}
			engine.Cache = cache
		}
		tbl, info, err := engine.Run(spec)
		if err != nil {
			return err
		}
		lcli.RecordScenario(spec.Experiment, info.Hash, scenario.EngineVersion, info.CacheHit)
		if info.CacheHit {
			fmt.Fprintf(stderr, "odrl-run: cache hit %s\n", info.Hash)
		}

		w := io.Writer(stdout)
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if *csvOut {
			return tbl.WriteCSV(w)
		}
		_, err = tbl.WriteTo(w)
		return err
	}()
	lcli.Finish(runErr)
	if runErr != nil {
		fmt.Fprintln(stderr, "odrl-run:", runErr)
		return 1
	}
	return 0
}
