// Command odrl-obs is the cross-run regression observatory: it queries the
// append-only run ledger the other commands write (see internal/obs/ledger)
// to list runs, diff two runs' metric summaries, trend a metric over time,
// and gate CI against a pinned baseline.
//
// Usage:
//
//	odrl-obs -list                         # recent runs, newest last
//	odrl-obs -list -tool odrl-run -experiment F4
//	odrl-obs -show 20260808T0912           # one record, by ID prefix
//	odrl-obs -diff RUN_A RUN_B             # metric deltas between two runs
//	odrl-obs -trend bips -spec cafe01      # one metric across matching runs
//	odrl-obs -pin latest                   # pin the newest ok run as baseline
//	odrl-obs -check                        # exit 1 if latest regressed vs pin
//
// Deterministic metrics (bips, over_j, …) are judged by default; wall-clock
// metrics (decide_*) only with -wallclock, so identical-spec re-runs always
// diff clean. odrl-obs itself writes no run records: watching the watcher
// would add a record per query.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/obs/ledger"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam. Exit code 2 means the
// invocation was malformed, 1 means a regression (or a broken ledger), 0
// means clean.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odrl-obs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: odrl-obs -list | -show ID | -diff A B | -trend METRIC | -pin ID|latest | -check")
		fs.PrintDefaults()
	}
	var (
		list      = fs.Bool("list", false, "list matching run records, oldest first")
		show      = fs.String("show", "", "print one record (by ID or unique prefix) as indented JSON")
		diffMode  = fs.Bool("diff", false, "diff two records' run summaries (two ID arguments)")
		trend     = fs.String("trend", "", "print one metric's value across matching records, oldest first")
		pin       = fs.String("pin", "", "pin a record ('latest' or an ID) as the regression baseline")
		check     = fs.Bool("check", false, "compare the latest matching run against the pinned baseline; exit 1 on regression")
		ledgerDir = fs.String("ledger", "", "ledger directory (default $ODRL_LEDGER or "+ledger.DefaultDir+")")
		tool      = fs.String("tool", "", "filter: records written by this tool")
		spec      = fs.String("spec", "", "filter: records whose scenario spec hash starts with this prefix")
		experi    = fs.String("experiment", "", "filter: records that ran this experiment ID (T1, F4, …)")
		status    = fs.String("status", "", "filter: record status (ok | failed)")
		baseline  = fs.String("baseline", "", "override the pinned baseline for -check (record ID)")
		threshold = fs.Float64("threshold", 0.05, "relative change beyond which a judged metric regresses")
		wallClock = fs.Bool("wallclock", false, "also judge host-dependent metrics ("+ledger.JudgedMetricNames()+" minus the deterministic set)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, on := range []bool{*list, *show != "", *diffMode, *trend != "", *pin != "", *check} {
		if on {
			modes++
		}
	}
	if modes == 0 {
		fs.Usage()
		return 2
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "odrl-obs: -list, -show, -diff, -trend, -pin and -check are mutually exclusive")
		return 2
	}
	if *diffMode && fs.NArg() != 2 {
		fmt.Fprintln(stderr, "odrl-obs: -diff takes exactly two record IDs")
		return 2
	}
	if !*diffMode && fs.NArg() != 0 {
		fmt.Fprintf(stderr, "odrl-obs: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintln(stderr, "odrl-obs: -threshold must be >= 0")
		return 2
	}

	dir := ledger.ResolveDir(*ledgerDir)
	recs, errs := ledger.Read(dir)
	// Corrupt lines are loud but not fatal to read-only queries: the whole
	// point of the content hash is to notice them. Only -check treats them
	// as a failure — CI must not certify a tampered history as clean.
	for _, err := range errs {
		fmt.Fprintln(stderr, "odrl-obs: ledger:", err)
	}
	filter := ledger.Filter{Tool: *tool, SpecHash: *spec, Experiment: *experi, Status: *status}
	opts := ledger.CompareOptions{Threshold: *threshold, WallClock: *wallClock}

	switch {
	case *list:
		matched := ledger.Select(recs, filter)
		if len(matched) == 0 {
			fmt.Fprintf(stdout, "no matching records in %s (%d total)\n", dir, len(recs))
			return 0
		}
		fmt.Fprintf(stdout, "%-28s %-12s %-8s %8s %6s %7s %7s  %s\n",
			"ID", "TOOL", "STATUS", "WALL_S", "RUNS", "ALERTS", "FAULTS", "SCENARIOS")
		for _, r := range matched {
			fmt.Fprintf(stdout, "%-28s %-12s %-8s %8.2f %6d %7d %7d  %s\n",
				r.ID, r.Tool, r.Status, r.WallS, len(r.Runs), r.Alerts, r.Faults, scenarioSummary(r))
		}
		return 0

	case *show != "":
		r, err := ledger.ByID(recs, *show)
		if err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		return 0

	case *diffMode:
		base, err := ledger.ByID(recs, fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		cand, err := ledger.ByID(recs, fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		return reportCompare(stdout, base, cand, opts)

	case *trend != "":
		matched := ledger.Select(recs, filter)
		n := 0
		for _, r := range matched {
			for _, s := range r.Runs {
				v, ok := s.Metrics[*trend]
				if !ok {
					continue
				}
				fmt.Fprintf(stdout, "%-28s %-28s %12.6g\n", r.ID, s.Key(), v)
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(stdout, "no samples of %q in %d matching record(s)\n", *trend, len(matched))
		}
		return 0

	case *pin != "":
		var r ledger.Record
		if *pin == "latest" {
			f := filter
			if f.Status == "" {
				f.Status = ledger.StatusOK // never pin a failed run by default
			}
			var ok bool
			r, ok = ledger.Latest(recs, f)
			if !ok {
				fmt.Fprintln(stderr, "odrl-obs: no matching ok record to pin")
				return 1
			}
		} else {
			var err error
			r, err = ledger.ByID(recs, *pin)
			if err != nil {
				fmt.Fprintln(stderr, "odrl-obs:", err)
				return 1
			}
		}
		b := ledger.Baseline{ID: r.ID, PinnedAt: time.Now().UTC().Format(time.RFC3339)} //odrl:allow wallclock baseline pin timestamp is operator metadata, not simulation input
		if err := ledger.WriteBaseline(dir, b); err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		fmt.Fprintf(stdout, "pinned baseline %s (%s, %s)\n", r.ID, r.Tool, r.Status)
		return 0

	default: // *check
		if len(errs) > 0 {
			fmt.Fprintf(stderr, "odrl-obs: check: %d corrupt ledger line(s)\n", len(errs))
			return 1
		}
		baseID := *baseline
		if baseID == "" {
			b, ok, err := ledger.ReadBaseline(dir)
			if err != nil {
				fmt.Fprintln(stderr, "odrl-obs:", err)
				return 1
			}
			if !ok {
				fmt.Fprintln(stderr, "odrl-obs: no baseline pinned (run odrl-obs -pin latest, or pass -baseline ID)")
				return 1
			}
			baseID = b.ID
		}
		base, err := ledger.ByID(recs, baseID)
		if err != nil {
			fmt.Fprintln(stderr, "odrl-obs:", err)
			return 1
		}
		f := filter
		if f.Status == "" {
			f.Status = ledger.StatusOK
		}
		cand, ok := ledger.Latest(recs, f)
		if !ok {
			fmt.Fprintln(stderr, "odrl-obs: no matching candidate record")
			return 1
		}
		fmt.Fprintf(stdout, "baseline  %s (%s)\ncandidate %s (%s)\n", base.ID, base.Tool, cand.ID, cand.Tool)
		return reportCompare(stdout, base, cand, opts)
	}
}

// scenarioSummary renders a record's scenario refs for the list view.
func scenarioSummary(r ledger.Record) string {
	var parts []string
	for _, s := range r.Scenarios {
		h := s.SpecHash
		if len(h) > 10 {
			h = h[:10]
		}
		p := h
		if s.Experiment != "" {
			p = s.Experiment + ":" + h
		}
		if s.CacheHit {
			p += " (cached)"
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, " ")
}

// reportCompare prints every delta plus unmatched-run notes and returns the
// exit code: 1 when any judged metric regressed.
func reportCompare(stdout io.Writer, base, cand ledger.Record, opts ledger.CompareOptions) int {
	deltas, notes := ledger.Compare(base, cand, opts)
	for _, d := range deltas {
		fmt.Fprintln(stdout, d.String())
	}
	for _, n := range notes {
		fmt.Fprintln(stdout, "note:", n)
	}
	regs := ledger.Regressions(deltas)
	if len(regs) > 0 {
		fmt.Fprintf(stdout, "%d regression(s) beyond %.1f%% (judged: %s)\n",
			len(regs), opts.Threshold*100, ledger.JudgedMetricNames())
		return 1
	}
	fmt.Fprintf(stdout, "0 regressions across %d compared metric(s)\n", len(deltas))
	return 0
}
