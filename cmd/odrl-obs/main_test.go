package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/ledger"
)

// appendRec writes one synthetic run record the way a CLI session would.
func appendRec(t *testing.T, dir, id, tool, specHash string, metrics map[string]float64, fail bool) {
	t.Helper()
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := ledger.Record{
		Schema: ledger.Schema,
		ID:     id,
		Tool:   tool,
		Start:  "2026-08-08T09:00:00Z",
		WallS:  1.5,
		Host:   obs.HostInfo(),
		Status: ledger.StatusOK,
	}
	if specHash != "" {
		r.Scenarios = []ledger.ScenarioRef{{Experiment: "F4", SpecHash: specHash, EngineVersion: "v1"}}
	}
	if metrics != nil {
		r.Runs = []ledger.RunSummary{{
			Controller: "od-rl", Workload: "mixed", Seed: 1, Cores: 64,
			Epochs: 100, Metrics: metrics,
		}}
	}
	if fail {
		r.Status = ledger.StatusFailed
		r.Error = "synthetic"
	}
	if err := l.Append(r); err != nil {
		t.Fatal(err)
	}
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// baseMetrics is a healthy run summary; copies tweak individual keys.
func baseMetrics(over map[string]float64) map[string]float64 {
	m := map[string]float64{
		"bips": 40, "bips_per_w": 0.5, "over_j": 1.2, "over_time_frac": 0.01,
		"mean_w": 80, "peak_w": 95, "decide_p99_ns": 1800,
	}
	for k, v := range over {
		m[k] = v
	}
	return m
}

func TestObsUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no mode", []string{"-ledger", dir}, "usage:"},
		{"two modes", []string{"-ledger", dir, "-list", "-check"}, "mutually exclusive"},
		{"diff one arg", []string{"-ledger", dir, "-diff", "a"}, "exactly two"},
		{"stray args", []string{"-ledger", dir, "-list", "stray"}, "unexpected arguments"},
		{"negative threshold", []string{"-ledger", dir, "-check", "-threshold", "-1"}, "must be >= 0"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q missing %q", stderr, tc.want)
			}
		})
	}
}

func TestObsListShowTrendFilters(t *testing.T) {
	dir := t.TempDir()
	appendRec(t, dir, "r1-aaaa", "odrl-run", "cafe0123", baseMetrics(nil), false)
	appendRec(t, dir, "r2-bbbb", "odrl-bench", "beef4567", baseMetrics(map[string]float64{"bips": 41}), false)
	appendRec(t, dir, "r3-cccc", "odrl-run", "", nil, true)

	code, out, stderr := runCLI(t, "-ledger", dir, "-list")
	if code != 0 {
		t.Fatalf("list exit %d: %s", code, stderr)
	}
	for _, want := range []string{"r1-aaaa", "r2-bbbb", "r3-cccc", "F4:cafe0123", "failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runCLI(t, "-ledger", dir, "-list", "-tool", "odrl-bench")
	if code != 0 || strings.Contains(out, "r1-aaaa") || !strings.Contains(out, "r2-bbbb") {
		t.Errorf("tool filter leaked:\n%s", out)
	}
	code, out, _ = runCLI(t, "-ledger", dir, "-list", "-spec", "cafe")
	if code != 0 || !strings.Contains(out, "r1-aaaa") || strings.Contains(out, "r2-bbbb") {
		t.Errorf("spec-prefix filter leaked:\n%s", out)
	}
	code, out, _ = runCLI(t, "-ledger", dir, "-list", "-status", "failed")
	if code != 0 || !strings.Contains(out, "r3-cccc") || strings.Contains(out, "r1-aaaa") {
		t.Errorf("status filter leaked:\n%s", out)
	}

	// -show by unique prefix prints the full record JSON.
	code, out, stderr = runCLI(t, "-ledger", dir, "-show", "r2")
	if code != 0 {
		t.Fatalf("show exit %d: %s", code, stderr)
	}
	if !strings.Contains(out, `"id": "r2-bbbb"`) || !strings.Contains(out, `"spec_hash": "beef4567"`) {
		t.Errorf("show output:\n%s", out)
	}
	if code, _, stderr = runCLI(t, "-ledger", dir, "-show", "r"); code != 1 || !strings.Contains(stderr, "ambiguous") {
		t.Errorf("ambiguous prefix: exit %d, stderr %s", code, stderr)
	}

	// -trend prints one line per run carrying the metric, oldest first.
	code, out, stderr = runCLI(t, "-ledger", dir, "-trend", "bips")
	if code != 0 {
		t.Fatalf("trend exit %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "40") || !strings.Contains(lines[1], "41") {
		t.Errorf("trend output:\n%s", out)
	}
	if _, out, _ = runCLI(t, "-ledger", dir, "-trend", "nope"); !strings.Contains(out, "no samples") {
		t.Errorf("missing-metric trend output:\n%s", out)
	}
}

// TestObsDiffIdenticalSpecClean is the acceptance criterion: two runs of the
// same spec — deterministic metrics identical, wall-clock jitter present —
// must diff with zero regressions by default.
func TestObsDiffIdenticalSpecClean(t *testing.T) {
	dir := t.TempDir()
	appendRec(t, dir, "runA", "odrl-run", "cafe0123", baseMetrics(map[string]float64{"decide_p99_ns": 1800}), false)
	appendRec(t, dir, "runB", "odrl-run", "cafe0123", baseMetrics(map[string]float64{"decide_p99_ns": 2600}), false)

	code, out, stderr := runCLI(t, "-ledger", dir, "-diff", "runA", "runB")
	if code != 0 {
		t.Fatalf("identical-spec diff exit %d:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "0 regressions") {
		t.Errorf("diff output missing clean verdict:\n%s", out)
	}

	// The same pair with -wallclock judges the decide jitter (+44%).
	code, out, _ = runCLI(t, "-ledger", dir, "-diff", "-wallclock", "runA", "runB")
	if code != 1 || !strings.Contains(out, "decide_p99_ns") {
		t.Errorf("-wallclock diff: exit %d\n%s", code, out)
	}
}

// TestObsPinAndCheck is the CI-gate acceptance criterion: a seeded slowdown
// against the pinned baseline makes -check exit 1.
func TestObsPinAndCheck(t *testing.T) {
	dir := t.TempDir()
	appendRec(t, dir, "good1", "odrl-run", "cafe0123", baseMetrics(nil), false)

	code, out, stderr := runCLI(t, "-ledger", dir, "-pin", "latest")
	if code != 0 || !strings.Contains(out, "pinned baseline good1") {
		t.Fatalf("pin: exit %d\n%s%s", code, out, stderr)
	}

	// Identical re-run: check passes.
	appendRec(t, dir, "good2", "odrl-run", "cafe0123", baseMetrics(nil), false)
	code, out, stderr = runCLI(t, "-ledger", dir, "-check")
	if code != 0 {
		t.Fatalf("clean check exit %d:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "baseline  good1") || !strings.Contains(out, "candidate good2") {
		t.Errorf("check output missing pair:\n%s", out)
	}

	// Seeded 20% bips collapse: check fails, naming the metric.
	appendRec(t, dir, "slow1", "odrl-run", "cafe0123", baseMetrics(map[string]float64{"bips": 32}), false)
	code, out, _ = runCLI(t, "-ledger", dir, "-check")
	if code != 1 {
		t.Fatalf("regressed check exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "bips") || !strings.Contains(out, "regression(s)") {
		t.Errorf("check output missing regression:\n%s", out)
	}

	// A loose threshold admits the same slowdown.
	if code, out, _ = runCLI(t, "-ledger", dir, "-check", "-threshold", "0.5"); code != 0 {
		t.Errorf("loose-threshold check exit %d:\n%s", code, out)
	}

	// A failed run never becomes the candidate.
	appendRec(t, dir, "boom1", "odrl-run", "cafe0123", nil, true)
	if code, out, _ = runCLI(t, "-ledger", dir, "-check", "-threshold", "0.5"); code != 0 {
		t.Errorf("failed-run candidate leaked into check:\n%s", out)
	}

	// -baseline overrides the pin.
	code, out, _ = runCLI(t, "-ledger", dir, "-check", "-baseline", "slow1", "-threshold", "0.5")
	if code != 0 || !strings.Contains(out, "baseline  slow1") {
		t.Errorf("-baseline override: exit %d\n%s", code, out)
	}
}

func TestObsCheckWithoutBaseline(t *testing.T) {
	dir := t.TempDir()
	appendRec(t, dir, "only1", "odrl-run", "", baseMetrics(nil), false)
	code, _, stderr := runCLI(t, "-ledger", dir, "-check")
	if code != 1 || !strings.Contains(stderr, "no baseline pinned") {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

// TestObsCheckRefusesCorruptLedger: -check fails closed when any line fails
// its content-hash verification, even if the surviving records look fine.
func TestObsCheckRefusesCorruptLedger(t *testing.T) {
	dir := t.TempDir()
	appendRec(t, dir, "good1", "odrl-run", "", baseMetrics(nil), false)
	if code, _, _ := runCLI(t, "-ledger", dir, "-pin", "latest"); code != 0 {
		t.Fatal("pin failed")
	}
	tamper(t, dir)
	code, _, stderr := runCLI(t, "-ledger", dir, "-check")
	if code != 1 || !strings.Contains(stderr, "corrupt ledger line") {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// Read-only list still works, with the corruption reported on stderr.
	if code, _, stderr := runCLI(t, "-ledger", dir, "-list"); code != 0 || !strings.Contains(stderr, "hash mismatch") {
		t.Fatalf("list over corrupt ledger: exit %d, stderr: %s", code, stderr)
	}
}

// tamper appends a record and then edits its metric in place.
func tamper(t *testing.T, dir string) {
	t.Helper()
	appendRec(t, dir, "evil1", "odrl-run", "", baseMetrics(map[string]float64{"bips": 40}), false)
	path := filepath.Join(dir, ledger.FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(data, []byte(`"bips":40`), []byte(`"bips":99`), 1)
	if bytes.Equal(edited, data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
}
