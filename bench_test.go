// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table/figure (see DESIGN.md's experiment index), plus controller
// decision micro-benchmarks. The experiment benchmarks run in Quick mode so
// `go test -bench=.` finishes in minutes; `cmd/odrl-bench` (no -quick) is
// the full-fidelity path recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/manycore"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/vf"
	"repro/internal/workload"
)

// benchExperiment runs one experiment per iteration at a fixed seed. The
// seed is deliberately NOT varied per iteration: F2-F4 share a memoised
// benchmark sweep by design, and per-iteration seeds would let Go's b.N
// calibration extrapolate from cheap cache-hit iterations into thousands
// of expensive cache-miss ones. With a fixed seed the first iteration pays
// the full cost and later ones measure the amortised path, which is
// exactly how the experiments are consumed by cmd/odrl-bench.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Default()
	cfg.Quick = true
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1_Platform(b *testing.B)                { benchExperiment(b, "T1") }
func BenchmarkT2_Workloads(b *testing.B)               { benchExperiment(b, "T2") }
func BenchmarkF1_PowerTrace(b *testing.B)              { benchExperiment(b, "F1") }
func BenchmarkF2_Overshoot(b *testing.B)               { benchExperiment(b, "F2") }
func BenchmarkF3_ThroughputPerOverEnergy(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkF4_EnergyEfficiency(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkF5_ControllerScaling(b *testing.B)       { benchExperiment(b, "F5") }
func BenchmarkF6_Convergence(b *testing.B)             { benchExperiment(b, "F6") }
func BenchmarkF7_BudgetSweep(b *testing.B)             { benchExperiment(b, "F7") }
func BenchmarkF8_CoreScaling(b *testing.B)             { benchExperiment(b, "F8") }
func BenchmarkF9_Ablation(b *testing.B)                { benchExperiment(b, "F9") }
func BenchmarkF10_Thermal(b *testing.B)                { benchExperiment(b, "F10") }

// syntheticTelemetry mirrors the F5 harness for the micro-benchmarks below.
func syntheticTelemetry(n int) *manycore.Telemetry {
	table := vf.Default()
	pp := power.Default()
	r := rng.New(7)
	tel := &manycore.Telemetry{EpochS: 1e-3, Cores: make([]manycore.CoreTelemetry, n)}
	total := pp.UncoreW
	for i := range tel.Cores {
		lvl := r.Intn(table.Levels())
		op := table.Point(lvl)
		mb := r.Float64()
		pw := pp.CoreW(op.VoltageV, op.FreqHz, 0.3+0.6*r.Float64(), 330)
		tel.Cores[i] = manycore.CoreTelemetry{
			Level: lvl, FreqHz: op.FreqHz, VoltageV: op.VoltageV,
			IPS: op.FreqHz / (0.8 + 2*mb), PowerW: pw, MemBoundedness: mb, TempK: 330,
		}
		total += pw
	}
	tel.TruePowerW, tel.ChipPowerW = total, total
	return tel
}

// benchDecide measures a single controller's per-Decide latency — the raw
// numbers behind the F5 scaling table.
func benchDecide(b *testing.B, name string, cores int) {
	b.Helper()
	env := sim.DefaultEnv(cores)
	c, err := sim.NewController(name, env)
	if err != nil {
		b.Fatal(err)
	}
	tel := syntheticTelemetry(cores)
	budget := 1.4*float64(cores) + power.Default().UncoreW
	out := make([]int, cores)
	c.Decide(tel, budget, out) // warm allocations
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decide(tel, budget, out)
	}
}

func BenchmarkDecideODRL64(b *testing.B)      { benchDecide(b, "od-rl", 64) }
func BenchmarkDecideODRL256(b *testing.B)     { benchDecide(b, "od-rl", 256) }
func BenchmarkDecideODRL1024(b *testing.B)    { benchDecide(b, "od-rl", 1024) }
func BenchmarkDecideMaxBIPS64(b *testing.B)   { benchDecide(b, "maxbips", 64) }
func BenchmarkDecideMaxBIPS256(b *testing.B)  { benchDecide(b, "maxbips", 256) }
func BenchmarkDecideSteepest256(b *testing.B) { benchDecide(b, "steepest-drop", 256) }
func BenchmarkDecidePID256(b *testing.B)      { benchDecide(b, "pid", 256) }

// BenchmarkChipEpoch measures raw simulator throughput: one 64-core epoch
// with the thermal loop closed.
func BenchmarkChipEpoch64(b *testing.B) {
	cfg := manycore.DefaultConfig()
	sources := make([]workload.Source, 64)
	base := rng.New(3)
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset("ferret"), base.Split())
		if err != nil {
			b.Fatal(err)
		}
		sources[i] = p
	}
	chip, err := manycore.New(cfg, sources, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Step(1e-3)
	}
}

// buildKernelChip builds the chip shape the BENCH_step gate measures: a
// preset-mix workload (one preset per core, round-robin) at the given
// core count. raw strips sensor noise and the thermal loop, isolating the
// epoch kernel itself from the irreducible per-core RNG draws and the
// Euler integrator.
func buildKernelChip(b *testing.B, cores int, raw bool) *manycore.Chip {
	b.Helper()
	w, h, err := sim.GridFor(cores)
	if err != nil {
		b.Fatal(err)
	}
	cfg := manycore.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = 1
	if raw {
		cfg.SensorNoise = 0
		cfg.ThermalEnabled = false
	}
	sources := make([]workload.Source, cores)
	base := rng.New(3)
	names := workload.PresetNames()
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset(names[i%len(names)]), base.Split())
		if err != nil {
			b.Fatal(err)
		}
		sources[i] = p
	}
	chip, err := manycore.New(cfg, sources, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	return chip
}

// benchStepKernel is the single-thread epoch-throughput measurement
// behind BENCH_step.json: the struct-of-arrays kernel vs the retained
// pre-optimization reference. churn, when set, retargets one core in
// eight per epoch so transition stalls and memo refills are represented
// the way an exploring controller produces them; the steady variant
// holds levels fixed and measures the kernel alone, which is the
// throughput-gate case (phases still evolve underneath either way).
func benchStepKernel(b *testing.B, cores int, raw, reference, churn bool) {
	b.Helper()
	chip := buildKernelChip(b, cores, raw)
	defer chip.Close()
	levels := chip.Config().VF.Levels()
	var tel manycore.Telemetry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reference {
			chip.ReferenceStepInto(1e-3, &tel)
		} else {
			chip.StepInto(1e-3, &tel)
		}
		if churn {
			for c := i % 8; c < cores; c += 8 {
				chip.SetLevel(c, (chip.Level(c)+1)%levels)
			}
		}
	}
}

func BenchmarkStepKernel64(b *testing.B)     { benchStepKernel(b, 64, false, false, true) }
func BenchmarkStepKernel256(b *testing.B)    { benchStepKernel(b, 256, false, false, true) }
func BenchmarkStepKernel1024(b *testing.B)   { benchStepKernel(b, 1024, false, false, true) }
func BenchmarkStepKernelRef256(b *testing.B) { benchStepKernel(b, 256, false, true, true) }
func BenchmarkStepKernelRaw256(b *testing.B) { benchStepKernel(b, 256, true, false, true) }
func BenchmarkStepKernelRawRef256(b *testing.B) {
	benchStepKernel(b, 256, true, true, true)
}
func BenchmarkStepKernelRawSteady256(b *testing.B) {
	benchStepKernel(b, 256, true, false, false)
}
func BenchmarkStepKernelRawRefSteady256(b *testing.B) {
	benchStepKernel(b, 256, true, true, false)
}

// benchStepParallel measures chip stepping throughput at a core count and
// worker count. Results are bit-identical across worker counts, so the
// workers axis isolates the parallel layer's scheduling cost vs speedup;
// chips below the sharding threshold (128 cores) stay sequential.
func benchStepParallel(b *testing.B, cores, workers int) {
	b.Helper()
	w, h, err := sim.GridFor(cores)
	if err != nil {
		b.Fatal(err)
	}
	cfg := manycore.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Workers = workers
	sources := make([]workload.Source, cores)
	base := rng.New(3)
	for i := range sources {
		p, err := workload.NewProcess(workload.MustPreset("ferret"), base.Split())
		if err != nil {
			b.Fatal(err)
		}
		sources[i] = p
	}
	chip, err := manycore.New(cfg, sources, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Step(1e-3)
	}
}

func BenchmarkStepParallel64(b *testing.B)   { benchStepParallel(b, 64, 0) }
func BenchmarkStepParallel256(b *testing.B)  { benchStepParallel(b, 256, 0) }
func BenchmarkStepParallel1024(b *testing.B) { benchStepParallel(b, 1024, 0) }

func BenchmarkStepSequential256(b *testing.B)  { benchStepParallel(b, 256, 1) }
func BenchmarkStepSequential1024(b *testing.B) { benchStepParallel(b, 1024, 1) }

// BenchmarkSweepParallel measures the experiment fan-out layer: the F7
// budget sweep's independent runs dispatched across all CPUs vs one.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiments.Default()
	cfg.Quick = true
	for _, workers := range []int{1, 0} {
		workers := workers
		name := "sequential"
		if workers == 0 {
			name = "allCPUs"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cfg
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.F7BudgetSweep(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd runs a complete short capped simulation with OD-RL —
// the cost of one experiment data point.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := sim.DefaultOptions()
		opts.Cores = 16
		opts.WarmupS = 0.1
		opts.MeasureS = 0.2
		opts.Seed = uint64(i + 1)
		c, err := sim.NewController("od-rl", sim.DefaultEnv(opts.Cores))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(opts, c); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of the public API; also asserts it compiles against the façade.
func ExampleRun() {
	opts := DefaultOptions()
	opts.Cores = 4
	opts.BudgetW = 12
	opts.WarmupS = 0.01
	opts.MeasureS = 0.02
	c, err := NewController("static", DefaultEnv(opts.Cores))
	if err != nil {
		panic(err)
	}
	res, err := Run(opts, c)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Summary.Controller)
	// Output: static
}

func BenchmarkF11_Variation(b *testing.B) { benchExperiment(b, "F11") }
func BenchmarkF12_WarmStart(b *testing.B) { benchExperiment(b, "F12") }
func BenchmarkF13_Islands(b *testing.B)   { benchExperiment(b, "F13") }
func BenchmarkF14_Barrier(b *testing.B)   { benchExperiment(b, "F14") }
func BenchmarkF15_Seeds(b *testing.B)     { benchExperiment(b, "F15") }
func BenchmarkF16_Server(b *testing.B)    { benchExperiment(b, "F16") }
func BenchmarkF17_Hetero(b *testing.B)    { benchExperiment(b, "F17") }
func BenchmarkF18_Faults(b *testing.B)    { benchExperiment(b, "F18") }
func BenchmarkF19_Learning(b *testing.B)  { benchExperiment(b, "F19") }
