# Tier-1 gate: everything CI runs, in order. `make ci` must pass before
# merging.

GO ?= go

.PHONY: ci vet build test test-determinism race-par bench-obs bench bench-par

ci: vet build test test-determinism race-par bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Determinism gate for the parallel execution layer: sequential (Workers=1)
# and parallel (Workers=8) runs must produce byte-identical tables and
# telemetry at every level (experiment fan-out, chip stepping, OD-RL).
test-determinism:
	$(GO) test -run 'TestParallelDeterminism|TestStepParallelDeterminism|TestDecideParallelDeterminism' \
		./internal/experiments/ ./internal/manycore/ ./internal/core/

# Race gate on the packages the parallel layer touches most; `make test`
# already runs -race repo-wide, this narrows the loop while iterating.
race-par:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/obs/

# Compile-and-run check of the observability benchmarks, including the
# disabled-hot-path guarantee (<5 ns/epoch with tracing off). One
# iteration keeps CI fast; run `make bench` for real numbers.
bench-obs:
	$(GO) test -run=- -bench=BenchmarkObs -benchtime=1x ./internal/obs/

bench:
	$(GO) test -run=- -bench=. -benchtime=1s ./internal/obs/

# Sequential-vs-parallel wall-clock comparison: writes BENCH_par.json
# (workers, wall-clock seconds, speedup per case) and runs the Step/Sweep
# parallel benchmarks. Speedup is bounded by host CPU count.
bench-par:
	$(GO) run ./cmd/odrl-bench -bench-par BENCH_par.json
	$(GO) test -run=- -bench='BenchmarkStepParallel|BenchmarkStepSequential|BenchmarkSweepParallel' -benchtime=1s .
