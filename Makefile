# Tier-1 gate: everything CI runs, in order. `make ci` must pass before
# merging.

GO ?= go

.PHONY: ci vet build test bench-obs bench

ci: vet build test bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Compile-and-run check of the observability benchmarks, including the
# disabled-hot-path guarantee (<5 ns/epoch with tracing off). One
# iteration keeps CI fast; run `make bench` for real numbers.
bench-obs:
	$(GO) test -run=- -bench=BenchmarkObs -benchtime=1x ./internal/obs/

bench:
	$(GO) test -run=- -bench=. -benchtime=1s ./internal/obs/
