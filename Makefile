# Tier-1 gate: everything CI runs, in order. `make ci` must pass before
# merging.

GO ?= go

# Per-target budget for the fuzz smoke pass; bump for a real fuzzing session
# (e.g. `make fuzz-smoke FUZZTIME=10m`).
FUZZTIME ?= 10s

# Repo-wide statement-coverage floor for `make cover`. Set just under the
# measured baseline (80.8%) so genuine regressions fail while scheduler
# noise does not. Raise it when coverage rises; never lower it to merge.
COVER_FLOOR ?= 80.0

.PHONY: ci vet build test test-determinism race-par bench-obs bench bench-par fuzz-smoke cover

ci: vet build test test-determinism race-par bench-obs fuzz-smoke cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Determinism gate for the parallel execution layer: sequential (Workers=1)
# and parallel (Workers=8) runs must produce byte-identical tables and
# telemetry at every level (experiment fan-out, chip stepping, OD-RL).
test-determinism:
	$(GO) test -run 'TestParallelDeterminism|TestStepParallelDeterminism|TestDecideParallelDeterminism' \
		./internal/experiments/ ./internal/manycore/ ./internal/core/

# Race gate on the packages the parallel layer touches most; `make test`
# already runs -race repo-wide, this narrows the loop while iterating.
race-par:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/obs/

# Compile-and-run check of the observability benchmarks, including the
# disabled-hot-path guarantee (<5 ns/epoch with tracing off). One
# iteration keeps CI fast; run `make bench` for real numbers.
bench-obs:
	$(GO) test -run=- -bench=BenchmarkObs -benchtime=1x ./internal/obs/

bench:
	$(GO) test -run=- -bench=. -benchtime=1s ./internal/obs/

# Short fuzz pass over every decoder that accepts external bytes: workload
# traces, obs JSONL records, fault plans. Go runs one fuzz target per
# invocation, so each gets its own anchored pattern.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz='^FuzzTraceRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz='^FuzzReadRecords$$' -fuzztime=$(FUZZTIME) ./internal/obs/
	$(GO) test -run='^$$' -fuzz='^FuzzPlanJSON$$' -fuzztime=$(FUZZTIME) ./internal/fault/

# Coverage gate: repo-wide statement coverage must stay at or above
# COVER_FLOOR. Writes cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t + 0 < f + 0) { printf "coverage %.1f%% is below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Sequential-vs-parallel wall-clock comparison: writes BENCH_par.json
# (workers, wall-clock seconds, speedup per case) and runs the Step/Sweep
# parallel benchmarks. Speedup is bounded by host CPU count.
bench-par:
	$(GO) run ./cmd/odrl-bench -bench-par BENCH_par.json
	$(GO) test -run=- -bench='BenchmarkStepParallel|BenchmarkStepSequential|BenchmarkSweepParallel' -benchtime=1s .
