# Tier-1 gate: everything CI runs, in order. `make ci` must pass before
# merging.

GO ?= go

# Per-target budget for the fuzz smoke pass; bump for a real fuzzing session
# (e.g. `make fuzz-smoke FUZZTIME=10m`).
FUZZTIME ?= 10s

# Repo-wide statement-coverage floor for `make cover`. Set just under the
# measured baseline (80.8%) so genuine regressions fail while scheduler
# noise does not. Raise it when coverage rises; never lower it to merge.
COVER_FLOOR ?= 80.0

# Monitoring overhead ceiling for `make bench-monitor`, in percent: the
# epoch loop with the run-health monitor attached must stay within this
# fraction of the unmonitored loop. Recalibrated from 3% when the
# struct-of-arrays kernel made the epoch loop ~1.7x faster end-to-end:
# the monitor's absolute ns/epoch cost is unchanged, but a smaller
# denominator inflates the fraction (measured spread 0.6-3.7% on the
# single-CPU reference container).
MONITOR_OVERHEAD_MAX ?= 5.0

# Learning-introspection overhead ceiling for `make bench-learn`, in
# percent: the epoch loop with per-agent telemetry and convergence
# detection attached must stay within this fraction of the plain loop.
# Recalibrated with MONITOR_OVERHEAD_MAX (same faster-denominator effect).
LEARN_OVERHEAD_MAX ?= 5.0

# Flight-recorder overhead ceiling for `make bench-flight`, in percent:
# the epoch loop with the always-on flight ring attached must stay within
# this fraction of the bare loop. Tighter than the monitor/learn ceilings
# because the ring push is much lighter (measured 0.8-1.0% on the
# single-CPU reference container); the gap to 3% absorbs scheduler noise.
FLIGHT_OVERHEAD_MAX ?= 3.0

.PHONY: ci lint lint-allows vet build test test-determinism test-scenarios race-monitor race-learn race-ledger race-par bench-obs bench bench-par bench-monitor bench-learn bench-flight bench-step bench-step-smoke obs-smoke fuzz-smoke cover

ci: lint vet build test test-determinism test-scenarios race-monitor race-learn race-ledger race-par bench-obs bench-monitor bench-learn bench-flight bench-step-smoke obs-smoke fuzz-smoke cover

# Repo-specific invariant analyzers (detrange, rngdiscipline, wallclock,
# hotpathalloc, kernelparity): compile-time proof of the determinism, RNG,
# clock and hot-path contracts, run ahead of go vet so contract breaks
# surface before generic diagnostics. Exits non-zero on any unsuppressed
# diagnostic. odrl-vet carries its own go/parser+go/types driver because
# this container cannot add golang.org/x/tools; if that dependency ever
# becomes available, the analyzers port to a multichecker and this target
# becomes `go vet -vettool=$$(which odrl-vet) ./...` unchanged.
lint:
	$(GO) run ./cmd/odrl-vet ./...

# Audit ledger: every //odrl:allow suppression in the tree with its
# mandatory reason, so waivers stay reviewable.
lint-allows:
	$(GO) run ./cmd/odrl-vet -allows ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Determinism gate for the parallel execution layer: sequential (Workers=1)
# and parallel (Workers=8) runs must produce byte-identical tables and
# telemetry at every level (experiment fan-out, chip stepping, OD-RL).
test-determinism:
	$(GO) test -run 'TestParallelDeterminism|TestStepParallelDeterminism|TestDecideParallelDeterminism' \
		./internal/experiments/ ./internal/manycore/ ./internal/core/

# Scenario contract gate: the spec-parity harness (engine tables from
# checked-in JSON specs byte-identical to the experiments goldens at -j1
# and -j4), the cache properties (hit-is-byte-identical, one-field
# mutations change the hash, failures never memoised) and the odrl-run
# CLI surface.
test-scenarios:
	$(GO) test -count=1 ./internal/scenario/ ./cmd/odrl-run/

# Race hammer on the monitor's time-series store: concurrent HTTP-style
# readers snapshotting while the epoch loop appends and decimates.
race-monitor:
	$(GO) test -race -count=1 -run 'TestStoreConcurrentReadWrite|TestSSEStream|TestSlowSubscriber' ./internal/obs/monitor/

# Race hammer on the learn layer's run store: concurrent /debug/learn and
# summary readers while the epoch loop streams per-agent samples.
race-learn:
	$(GO) test -race -count=1 -run 'TestLearnStoreRace' ./internal/obs/learn/

# Race hammer on the run ledger: concurrent CLI sessions appending to one
# ledger.jsonl while readers re-parse it, plus the flight recorder's
# dump-while-recording path.
race-ledger:
	$(GO) test -race -count=1 -run 'TestLedgerConcurrentWriters' ./internal/obs/ledger/
	$(GO) test -race -count=1 -run 'TestDumpAllRacesEpochLoop' ./internal/obs/flight/

# Race gate on the packages the parallel layer touches most; `make test`
# already runs -race repo-wide, this narrows the loop while iterating.
race-par:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/obs/

# Compile-and-run check of the observability benchmarks, including the
# disabled-hot-path guarantee (<5 ns/epoch with tracing off). One
# iteration keeps CI fast; run `make bench` for real numbers.
bench-obs:
	$(GO) test -run=- -bench=BenchmarkObs -benchtime=1x ./internal/obs/

bench:
	$(GO) test -run=- -bench=. -benchtime=1s ./internal/obs/

# Short fuzz pass over every decoder that accepts external bytes: workload
# traces, obs JSONL records, fault plans. Go runs one fuzz target per
# invocation, so each gets its own anchored pattern.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz='^FuzzTraceRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz='^FuzzReadRecords$$' -fuzztime=$(FUZZTIME) ./internal/obs/
	$(GO) test -run='^$$' -fuzz='^FuzzPlanJSON$$' -fuzztime=$(FUZZTIME) ./internal/fault/
	$(GO) test -run='^$$' -fuzz='^FuzzRulesJSON$$' -fuzztime=$(FUZZTIME) ./internal/obs/monitor/
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/obs/learn/
	$(GO) test -run='^$$' -fuzz='^FuzzAllowComment$$' -fuzztime=$(FUZZTIME) ./internal/analysis/
	$(GO) test -run='^$$' -fuzz='^FuzzSpecJSON$$' -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -run='^$$' -fuzz='^FuzzRunRecord$$' -fuzztime=$(FUZZTIME) ./internal/obs/ledger/

# Coverage gate: repo-wide statement coverage must stay at or above
# COVER_FLOOR. Writes cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t + 0 < f + 0) { printf "coverage %.1f%% is below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Flight-recorder-off-vs-on wall-clock comparison: writes BENCH_flight.json
# and fails if any case's epoch-loop overhead exceeds FLIGHT_OVERHEAD_MAX %.
# The off leg runs with no observer at all, so the number is the full cost
# of always-on post-mortem recording.
bench-flight:
	$(GO) run ./cmd/odrl-bench -bench-flight BENCH_flight.json
	@awk -v max="$(FLIGHT_OVERHEAD_MAX)" ' \
		/"overhead_frac"/ { \
			v = $$0; sub(/.*"overhead_frac":[ \t]*/, "", v); sub(/[,}].*/, "", v); \
			pct = 100 * v; \
			if (pct > max + 0) { printf "flight overhead %.2f%% exceeds %.1f%% ceiling\n", pct, max; bad = 1 } \
			else { printf "flight overhead %.2f%% (ceiling %.1f%%)\n", pct, max } \
		} \
		END { exit bad }' BENCH_flight.json

# End-to-end observatory smoke: two short ledgered runs into a scratch
# ledger, then pin the first-run baseline, regression-check the re-run and
# list the history. Proves the whole record->query->gate loop outside unit
# tests; the scratch dir keeps CI runs out of the operator's real ledger.
obs-smoke:
	rm -rf .odrl-smoke
	ODRL_LEDGER=.odrl-smoke/ledger $(GO) run ./cmd/odrl -controllers greedy -cores 16 -warmup 0.2 -measure 0.5
	ODRL_LEDGER=.odrl-smoke/ledger $(GO) run ./cmd/odrl-obs -pin latest
	ODRL_LEDGER=.odrl-smoke/ledger $(GO) run ./cmd/odrl -controllers greedy -cores 16 -warmup 0.2 -measure 0.5
	ODRL_LEDGER=.odrl-smoke/ledger $(GO) run ./cmd/odrl-obs -check
	ODRL_LEDGER=.odrl-smoke/ledger $(GO) run ./cmd/odrl-obs -list
	rm -rf .odrl-smoke

# Epoch-kernel throughput gate: writes BENCH_step.json (epochs/sec at
# 64/256/1024 cores, struct-of-arrays vs the retained reference kernel)
# and fails unless the raw steady 256-core speedup clears the gate baked
# into the report (>= 5x). odrl-bench exits non-zero on gate failure; the
# awk pass re-checks the written report so a stale file can't pass.
bench-step:
	$(GO) run ./cmd/odrl-bench -bench-step BENCH_step.json
	@awk ' \
		/"pass"/ { \
			v = $$0; sub(/.*"pass":[ \t]*/, "", v); sub(/[,}].*/, "", v); \
			if (v == "true") { print "step-kernel throughput gate passed"; ok = 1 } \
		} \
		END { if (!ok) { print "step-kernel throughput gate FAILED (see BENCH_step.json)"; exit 1 } }' BENCH_step.json

# Compile-and-run smoke of the kernel benchmarks for CI: one iteration of
# every StepKernel case, so the SoA and reference harnesses can't rot.
bench-step-smoke:
	$(GO) test -run=- -bench='BenchmarkStepKernel' -benchtime=1x .

# Sequential-vs-parallel wall-clock comparison: writes BENCH_par.json
# (workers, wall-clock seconds, speedup per case) and runs the Step/Sweep
# parallel benchmarks. Speedup is bounded by host CPU count.
bench-par:
	$(GO) run ./cmd/odrl-bench -bench-par BENCH_par.json
	$(GO) test -run=- -bench='BenchmarkStepParallel|BenchmarkStepSequential|BenchmarkSweepParallel' -benchtime=1s .

# Monitoring-off-vs-on wall-clock comparison: writes BENCH_monitor.json and
# fails if any case's epoch-loop overhead exceeds MONITOR_OVERHEAD_MAX %.
bench-monitor:
	$(GO) run ./cmd/odrl-bench -bench-monitor BENCH_monitor.json
	@awk -v max="$(MONITOR_OVERHEAD_MAX)" ' \
		/"overhead_frac"/ { \
			v = $$0; sub(/.*"overhead_frac":[ \t]*/, "", v); sub(/[,}].*/, "", v); \
			pct = 100 * v; \
			if (pct > max + 0) { printf "monitor overhead %.2f%% exceeds %.1f%% ceiling\n", pct, max; bad = 1 } \
			else { printf "monitor overhead %.2f%% (ceiling %.1f%%)\n", pct, max } \
		} \
		END { exit bad }' BENCH_monitor.json

# Learning-introspection-off-vs-on wall-clock comparison: writes
# BENCH_learn.json and fails if any case's epoch-loop overhead exceeds
# LEARN_OVERHEAD_MAX %.
bench-learn:
	$(GO) run ./cmd/odrl-bench -bench-learn BENCH_learn.json
	@awk -v max="$(LEARN_OVERHEAD_MAX)" ' \
		/"overhead_frac"/ { \
			v = $$0; sub(/.*"overhead_frac":[ \t]*/, "", v); sub(/[,}].*/, "", v); \
			pct = 100 * v; \
			if (pct > max + 0) { printf "learn overhead %.2f%% exceeds %.1f%% ceiling\n", pct, max; bad = 1 } \
			else { printf "learn overhead %.2f%% (ceiling %.1f%%)\n", pct, max } \
		} \
		END { exit bad }' BENCH_learn.json
