package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 9
	opts.BudgetW = 20
	opts.WarmupS = 0.05
	opts.MeasureS = 0.1

	for _, name := range ControllerNames() {
		c, err := NewController(name, DefaultEnv(opts.Cores))
		if err != nil {
			t.Fatalf("NewController(%q): %v", name, err)
		}
		res, err := Run(opts, c)
		if err != nil {
			t.Fatalf("Run(%q): %v", name, err)
		}
		if res.Summary.Controller != name {
			t.Fatalf("result labelled %q, want %q", res.Summary.Controller, name)
		}
	}
}

func TestPublicNewODRL(t *testing.T) {
	cfg := DefaultODRLConfig()
	cfg.Lambda = 7
	c, err := NewODRL(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "od-rl" {
		t.Fatalf("Name = %q", c.Name())
	}
	if _, err := NewODRL(0, cfg); err == nil {
		t.Fatal("expected error for zero cores")
	}
}

func TestPublicWorkloadSurface(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 10 {
		t.Fatalf("WorkloadNames has %d entries", len(names))
	}
	spec, err := WorkloadPreset(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadPreset("nope"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestPublicExperimentSurface(t *testing.T) {
	run, err := ExperimentByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	cfg.Quick = true
	tbl, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T1") {
		t.Fatal("table output missing ID")
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestPublicTableWriters(t *testing.T) {
	opts := DefaultOptions()
	opts.Cores = 4
	opts.BudgetW = 12
	opts.WarmupS = 0.02
	opts.MeasureS = 0.05
	opts.TracePoints = 5
	results, err := RunAll(opts, []string{"static"})
	if err != nil {
		t.Fatal(err)
	}
	var tbl, csv, tr bytes.Buffer
	if err := WriteSummaryTable(&tbl, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&tr, "static", results[0].Trace); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 || csv.Len() == 0 || tr.Len() == 0 {
		t.Fatal("a writer produced no output")
	}
}
