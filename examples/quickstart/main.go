// Quickstart: cap a 16-core chip at 30 W and compare OD-RL against a
// RAPL-style PID capper on a mixed workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

func main() {
	opts := repro.DefaultOptions()
	opts.Cores = 16
	opts.BudgetW = 30
	opts.WarmupS = 2
	opts.MeasureS = 3

	results, err := repro.RunAll(opts, []string{"od-rl", "pid"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("16-core chip capped at %.0f W, mixed PARSEC-like workload:\n\n", opts.BudgetW)
	if err := repro.WriteSummaryTable(os.Stdout, results); err != nil {
		log.Fatal(err)
	}

	odrl, pid := results[0].Summary, results[1].Summary
	fmt.Printf("\nOD-RL spent %.3f J over budget; PID spent %.3f J.\n", odrl.OverJ, pid.OverJ)
	fmt.Printf("OD-RL energy efficiency: %.2f BIPS/W vs PID %.2f BIPS/W.\n",
		odrl.EnergyEff(), pid.EnergyEff())
}
