// Scalability: measure per-decision controller latency as the chip grows
// from 16 to 1024 cores — the abstract's "two orders of magnitude speedup"
// claim. OD-RL's per-epoch work is a table lookup per core; the MaxBIPS
// knapsack re-solves a power-discretised optimisation whose grid widens
// with the chip budget.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	cfg := repro.DefaultExperimentConfig()
	run, err := repro.ExperimentByID("F5")
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tbl.WriteTo(logWriter{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("OD-RL stays linear in core count; the centralized optimiser does not.")
}

// logWriter writes through fmt so the example has no direct os dependency.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
