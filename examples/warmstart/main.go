// Warmstart: train an OD-RL policy, persist it to a file, and boot a fresh
// controller from the saved policy — the deployment path for on-line RL
// control surviving restarts. Prints the first-second behaviour of a cold
// start next to the warm start.
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vf"
)

func main() {
	const cores = 32
	const budget = 30.0

	newController := func() *core.Controller {
		cfg := core.DefaultConfig()
		c, err := core.New(cores, vf.Default(), power.Default(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// measureFirstSecond runs a fresh chip under the controller and
	// reports the first second's throughput and overshoot.
	measureFirstSecond := func(c *core.Controller) (bips, overJ float64) {
		opts := sim.DefaultOptions()
		opts.Cores = cores
		opts.BudgetW = budget
		chip, _, err := sim.NewChip(opts)
		if err != nil {
			log.Fatal(err)
		}
		out := make([]int, cores)
		startInstr := chip.Instructions()
		for e := 0; e < 1000; e++ {
			tel := chip.Step(1e-3)
			c.Decide(&tel, budget, out)
			for i, l := range out {
				chip.SetLevel(i, l)
			}
			if tel.TruePowerW > budget {
				overJ += (tel.TruePowerW - budget) * 1e-3
			}
		}
		return (chip.Instructions() - startInstr) / 1e9, overJ
	}

	// 1. Train a controller for five simulated seconds.
	trained := newController()
	fmt.Println("training OD-RL for 5 simulated seconds...")
	{
		opts := sim.DefaultOptions()
		opts.Cores = cores
		opts.BudgetW = budget
		chip, _, err := sim.NewChip(opts)
		if err != nil {
			log.Fatal(err)
		}
		out := make([]int, cores)
		for e := 0; e < 5000; e++ {
			tel := chip.Step(1e-3)
			trained.Decide(&tel, budget, out)
			for i, l := range out {
				chip.SetLevel(i, l)
			}
		}
	}

	// 2. Persist the learned policy.
	path := filepath.Join(os.TempDir(), "odrl-policy.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trained.SavePolicy(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("saved policy to %s (%d bytes)\n\n", path, info.Size())

	// 3. Compare a cold start against a warm start on identical chips.
	coldBIPS, coldOver := measureFirstSecond(newController())

	warm := newController()
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := warm.LoadPolicy(rf); err != nil {
		log.Fatal(err)
	}
	rf.Close()
	warmBIPS, warmOver := measureFirstSecond(warm)

	fmt.Println("first second after boot (32 cores, 30 W cap):")
	fmt.Printf("  cold start: %6.2f BIPS, %.4f J over budget\n", coldBIPS, coldOver)
	fmt.Printf("  warm start: %6.2f BIPS, %.4f J over budget\n", warmBIPS, warmOver)
}
