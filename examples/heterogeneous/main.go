// Heterogeneous: run OD-RL on each benchmark class separately at a tight
// cap and show how the learned policy adapts — memory-bound workloads end
// up cheap and fast-enough at low VF levels, compute-bound ones spend the
// budget where frequency actually buys throughput. Also demonstrates a
// custom-tuned OD-RL (higher λ) via the public config surface.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	benchmarks := []string{"swaptions", "canneal", "dedup", "x264"}
	fmt.Println("OD-RL per benchmark, 32 cores capped at 30 W:")
	fmt.Printf("%-12s %8s %9s %9s %10s\n", "benchmark", "BIPS", "mean(W)", "over(J)", "BIPS/W")

	for _, bench := range benchmarks {
		opts := repro.DefaultOptions()
		opts.Cores = 32
		opts.Workload = bench
		opts.BudgetW = 30
		opts.WarmupS = 2
		opts.MeasureS = 3

		c, err := repro.NewController("od-rl", repro.DefaultEnv(opts.Cores))
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Run(opts, c)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-12s %8.2f %9.1f %9.3f %10.3f\n",
			bench, s.BIPS(), s.MeanW, s.OverJ, s.EnergyEff())
	}

	// A compliance-first variant: crank the overshoot penalty.
	fmt.Println("\ncustom OD-RL (λ=12, compliance-first) on the mix workload:")
	cfg := repro.DefaultODRLConfig()
	cfg.Lambda = 12
	strict, err := repro.NewODRL(32, cfg)
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.DefaultOptions()
	opts.Cores = 32
	opts.BudgetW = 30
	opts.WarmupS = 2
	opts.MeasureS = 3
	res, err := repro.Run(opts, strict)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("%-12s %8.2f %9.1f %9.3f %10.3f\n",
		"mix(λ=12)", s.BIPS(), s.MeanW, s.OverJ, s.EnergyEff())
}
