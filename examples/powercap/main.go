// Powercap: a 64-core server chip runs under a 90 W cap; at t=4 s the
// datacentre power manager drops the cap to 55 W (e.g. a rack-level brownout
// response). The example shows how each controller rides through the event
// and prints the power trace around the step.
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

func main() {
	const dropAtS = 4.0

	opts := repro.DefaultOptions()
	opts.Cores = 64
	opts.BudgetW = 90
	opts.BudgetSchedule = []repro.BudgetStep{{AtS: dropAtS, BudgetW: 55}}
	opts.WarmupS = 2
	opts.MeasureS = 5
	opts.TracePoints = 400

	fmt.Printf("64 cores, cap 90 W dropping to 55 W at t=%.0fs:\n\n", dropAtS)
	results, err := repro.RunAll(opts, []string{"od-rl", "pid", "greedy"})
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteSummaryTable(os.Stdout, results); err != nil {
		log.Fatal(err)
	}

	// Show each controller's behaviour right around the cap event.
	fmt.Println("\npower right after the cap event (first 30 ms):")
	for _, res := range results {
		fmt.Printf("  %-8s:", res.Summary.Controller)
		shown := 0
		for _, p := range res.Trace {
			if p.TimeS >= dropAtS && shown < 6 {
				fmt.Printf(" %.1fW", p.PowerW)
				shown++
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(a trace CSV for plotting: repro.WriteTrace(os.Stdout, name, res.Trace))")
}
